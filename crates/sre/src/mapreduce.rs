//! A reusable streaming map-reduce workload.
//!
//! The first pass of the paper's Huffman benchmark — data-parallel `count`
//! tasks feeding a serial `reduce` chain — is a general shape: compute a
//! mergeable summary per input block, fold summaries group-by-group into a
//! running accumulator, and hand the final accumulator to a continuation.
//! [`MapReduce`] packages that shape over the SRE so other applications
//! (and tests) get the paper's pipeline skeleton without rebuilding it.
//!
//! ```
//! use tvs_sre::exec::sim::{run, SimConfig};
//! use tvs_sre::{x86_smp, DispatchPolicy, FixedCost, InputBlock, MapReduce, Summary};
//!
//! #[derive(Clone, Default)]
//! struct Sum(u64);
//! impl Summary for Sum {
//!     fn merge(&mut self, other: &Self) { self.0 += other.0; }
//! }
//!
//! let wl = MapReduce::new(8, 4, |block: &[u8]| Sum(block.len() as u64));
//! let cfg = SimConfig {
//!     platform: x86_smp(4),
//!     policy: DispatchPolicy::NonSpeculative,
//!     trace: false,
//! };
//! let inputs: Vec<InputBlock> = (0..8)
//!     .map(|i| InputBlock { index: i, arrival: i as u64, data: vec![0u8; 100].into() })
//!     .collect();
//! let report = run(wl, &cfg, &FixedCost(10), inputs);
//! assert_eq!(report.workload.result().0, 800);
//! ```
//!
//! The reduce chain is deliberately *serial* (each group folds into the
//! accumulator of the previous one), exactly like the paper's Fig. 2: that
//! is what makes its prefix outcomes meaningful as speculation bases.

use crate::task::{expect_payload, payload, TaskSpec};
use crate::workload::{Completion, InputBlock, SchedCtx, Workload};
use std::sync::Arc;

/// A mergeable per-block summary.
///
/// `Default` must be the merge identity (`T::default().merge(&x)` equals
/// `x`), which seeds the reduce fold.
pub trait Summary: Default + Send + Sync + 'static {
    /// Fold `other` into `self`.
    fn merge(&mut self, other: &Self);
}

/// The shared per-block map function.
type MapFn<T> = Arc<dyn Fn(&[u8]) -> T + Send + Sync>;

/// Streaming map-reduce over fixed-size input blocks.
///
/// * `map` runs as one coarse task per block (depth 0);
/// * groups of `ratio` consecutive summaries fold into the running
///   accumulator via serial `reduce` tasks (depth 1);
/// * each reduce completion appends the accumulator-so-far to
///   [`MapReduce::prefixes`] (basis events — the speculation hook); after
///   the final group the workload finishes.
pub struct MapReduce<T: Summary> {
    name_map: &'static str,
    name_reduce: &'static str,
    ratio: usize,
    n_blocks: usize,
    map: MapFn<T>,

    data: Vec<Option<Arc<[u8]>>>,
    summaries: Vec<Option<Arc<T>>>,
    mapped_prefix: usize,
    acc: Vec<Arc<T>>,
    reduces_done: usize,
    reduce_inflight: bool,
    n_groups: usize,
}

impl<T: Summary> MapReduce<T> {
    /// A map-reduce over `n_blocks` blocks with the given group `ratio`.
    pub fn new(
        n_blocks: usize,
        ratio: usize,
        map: impl Fn(&[u8]) -> T + Send + Sync + 'static,
    ) -> Self {
        assert!(n_blocks > 0 && ratio > 0);
        MapReduce {
            name_map: "map",
            name_reduce: "reduce",
            ratio,
            n_blocks,
            map: Arc::new(map),
            data: vec![None; n_blocks],
            summaries: (0..n_blocks).map(|_| None).collect(),
            mapped_prefix: 0,
            acc: Vec::new(),
            reduces_done: 0,
            reduce_inflight: false,
            n_groups: n_blocks.div_ceil(ratio),
        }
    }

    /// Rename the task kinds (keys into the cost model).
    pub fn with_task_names(mut self, map: &'static str, reduce: &'static str) -> Self {
        self.name_map = map;
        self.name_reduce = reduce;
        self
    }

    /// Accumulator after each completed reduce so far (prefix outcomes —
    /// the speculation bases).
    pub fn prefixes(&self) -> &[Arc<T>] {
        &self.acc
    }

    /// The final accumulator, once finished.
    pub fn result(&self) -> &T {
        assert!(self.is_finished(), "result() before the reduction finished");
        self.acc.last().expect("at least one group")
    }

    /// Number of basis (reduce) events so far.
    pub fn basis(&self) -> usize {
        self.reduces_done
    }

    fn maybe_spawn_reduce(&mut self, ctx: &mut dyn SchedCtx) {
        if self.reduce_inflight || self.reduces_done >= self.n_groups {
            return;
        }
        let g = self.reduces_done;
        let lo = g * self.ratio;
        let hi = ((g + 1) * self.ratio).min(self.n_blocks);
        if self.mapped_prefix < hi {
            return;
        }
        let group: Vec<Arc<T>> = (lo..hi)
            .map(|i| self.summaries[i].as_ref().expect("mapped").clone())
            .collect();
        let prev = if g == 0 {
            None
        } else {
            Some(self.acc[g - 1].clone())
        };
        self.reduce_inflight = true;
        let bytes = (group.len() + prev.is_some() as usize) * std::mem::size_of::<T>();
        ctx.spawn(TaskSpec::regular(
            self.name_reduce,
            1,
            bytes,
            g as u64,
            move |_| {
                let mut acc = T::default();
                if let Some(p) = &prev {
                    acc.merge(p);
                }
                for part in &group {
                    acc.merge(part);
                }
                payload(Arc::new(acc))
            },
        ));
    }
}

impl<T: Summary> Workload for MapReduce<T> {
    fn on_input(&mut self, ctx: &mut dyn SchedCtx, block: InputBlock) {
        let idx = block.index;
        assert!(idx < self.n_blocks, "unexpected block {idx}");
        self.data[idx] = Some(block.data.clone());
        let map = Arc::clone(&self.map);
        let data = block.data;
        ctx.spawn(TaskSpec::regular(
            self.name_map,
            0,
            data.len(),
            idx as u64,
            move |_| payload(Arc::new(map(&data))),
        ));
    }

    fn on_complete(&mut self, ctx: &mut dyn SchedCtx, done: Completion) {
        match done.name {
            n if n == self.name_map => {
                let idx = done.tag as usize;
                self.summaries[idx] = Some(expect_payload::<Arc<T>>(done.output, "Arc<T>"));
                while self.mapped_prefix < self.n_blocks
                    && self.summaries[self.mapped_prefix].is_some()
                {
                    self.mapped_prefix += 1;
                }
                self.maybe_spawn_reduce(ctx);
            }
            n if n == self.name_reduce => {
                let acc = expect_payload::<Arc<T>>(done.output, "Arc<T>");
                self.acc.push(acc);
                self.reduces_done += 1;
                self.reduce_inflight = false;
                self.maybe_spawn_reduce(ctx);
            }
            other => unreachable!("unknown completion '{other}'"),
        }
    }

    fn is_finished(&self) -> bool {
        self.reduces_done == self.n_groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::sim::{run, SimConfig};
    use crate::platform::{x86_smp, FixedCost};
    use crate::DispatchPolicy;

    #[derive(Clone, Debug, Default, PartialEq)]
    struct Sum(u64);

    impl Summary for Sum {
        fn merge(&mut self, other: &Self) {
            self.0 += other.0;
        }
    }

    fn blocks(n: usize, bytes: usize) -> Vec<InputBlock> {
        (0..n)
            .map(|i| InputBlock {
                index: i,
                arrival: i as u64,
                data: vec![(i % 7) as u8; bytes].into(),
            })
            .collect()
    }

    fn run_sum(n_blocks: usize, ratio: usize, workers: usize) -> (MapReduce<Sum>, Vec<u64>) {
        let wl = MapReduce::new(n_blocks, ratio, |data: &[u8]| {
            Sum(data.iter().map(|&b| b as u64).sum())
        });
        let cfg = SimConfig {
            platform: x86_smp(workers),
            policy: DispatchPolicy::NonSpeculative,
            trace: false,
        };
        let inputs = blocks(n_blocks, 64);
        let expect: Vec<u64> = inputs
            .iter()
            .map(|b| b.data.iter().map(|&x| x as u64).sum())
            .collect();
        let rep = run(wl, &cfg, &FixedCost(5), inputs);
        (rep.workload, expect)
    }

    #[test]
    fn sums_match_serial_reference() {
        let (wl, per_block) = run_sum(13, 4, 4);
        assert_eq!(wl.result().0, per_block.iter().sum::<u64>());
        assert_eq!(wl.basis(), 4); // ceil(13/4)
    }

    #[test]
    fn prefixes_are_cumulative() {
        let (wl, per_block) = run_sum(16, 4, 2);
        let prefixes = wl.prefixes();
        assert_eq!(prefixes.len(), 4);
        for (g, p) in prefixes.iter().enumerate() {
            let expect: u64 = per_block[..(g + 1) * 4].iter().sum();
            assert_eq!(p.0, expect, "prefix after group {g}");
        }
    }

    #[test]
    fn single_block_single_group() {
        let (wl, per_block) = run_sum(1, 16, 1);
        assert_eq!(wl.result().0, per_block[0]);
        assert_eq!(wl.basis(), 1);
    }

    #[test]
    fn ratio_one_gives_one_basis_per_block() {
        let (wl, _) = run_sum(9, 1, 3);
        assert_eq!(wl.basis(), 9);
    }

    #[test]
    fn custom_task_names_flow_to_the_cost_model() {
        use crate::CostModel;
        struct NamedCost;
        impl CostModel for NamedCost {
            fn cost_us(&self, name: &str, _bytes: usize) -> u64 {
                match name {
                    "count" => 3,
                    "fold" => 7,
                    other => panic!("unexpected kind {other}"),
                }
            }
        }
        let wl =
            MapReduce::new(4, 2, |d: &[u8]| Sum(d.len() as u64)).with_task_names("count", "fold");
        let cfg = SimConfig {
            platform: x86_smp(2),
            policy: DispatchPolicy::NonSpeculative,
            trace: true,
        };
        let rep = run(wl, &cfg, &NamedCost, blocks(4, 10));
        assert_eq!(rep.workload.result().0, 40);
        assert!(rep.trace.iter().any(|t| t.name == "count"));
        assert!(rep.trace.iter().any(|t| t.name == "fold"));
    }
}
