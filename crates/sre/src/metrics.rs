//! Execution traces and aggregate run metrics.

use crate::task::{SpecVersion, TaskId, Time};

/// One executed task, as recorded by an executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskTrace {
    /// Task id.
    pub id: TaskId,
    /// Task kind name.
    pub name: &'static str,
    /// Worker that ran it.
    pub worker: usize,
    /// Speculation version, if any.
    pub version: Option<SpecVersion>,
    /// Application tag.
    pub tag: u64,
    /// Start time, µs.
    pub start: Time,
    /// End time, µs.
    pub end: Time,
    /// Whether the output was discarded because the version had been
    /// aborted by the time the task completed (wasted work).
    pub discarded: bool,
}

/// Aggregate metrics of one run.
///
/// Implements `PartialEq`/`Eq` so tests can assert that two runs (e.g. a
/// tracing-enabled and a tracing-disabled simulation) produced identical
/// metrics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunMetrics {
    /// Completion time of the whole run, µs.
    pub makespan: Time,
    /// Number of tasks whose output was delivered.
    pub tasks_delivered: u64,
    /// Number of tasks whose output was discarded (aborted versions).
    pub tasks_discarded: u64,
    /// Number of ready tasks deleted during rollbacks (never ran).
    pub tasks_deleted_ready: u64,
    /// Total busy worker time, µs (delivered + discarded).
    pub busy_us: Time,
    /// Busy time spent on later-discarded tasks, µs (wasted work).
    pub wasted_us: Time,
    /// Number of speculation rollbacks (version aborts).
    pub rollbacks: u64,
    /// Worker count of the platform that produced this run.
    pub workers: usize,
    /// Tasks routed into each worker's ready lane by the dispatcher
    /// (threaded executor) or bound to each simulated worker (simulator).
    ///
    /// **Semantics:** always `workers` entries long. Executors without
    /// per-worker lanes (the single-lock baseline) report explicit zeros —
    /// never an empty vec — so downstream consumers can index per worker
    /// without special-casing the executor. An all-zero vector means "this
    /// executor routed nothing through lanes", and [`Self::lane_imbalance`]
    /// returns 0.0 for it.
    pub lane_dispatches: Vec<u64>,
    /// Tasks a worker executed after stealing them from another worker's
    /// lane. Always zero for the simulator and the single-lock baseline.
    pub steals: u64,
    /// Task bodies that panicked and were caught by the executor
    /// (speculative fault → version abort; non-speculative → retried).
    pub faults: u64,
    /// Retry attempts spent re-running panicked non-speculative bodies.
    pub task_retries: u64,
    /// Tasks cancelled by the watchdog for exceeding their deadline.
    pub watchdog_cancels: u64,
    /// Duplicate completion deliveries the scheduler absorbed (only
    /// non-zero under fault injection).
    pub duplicate_completions: u64,
    /// Replica tasks spawned for replication-based validation (zero
    /// unless the workload is wrapped in a
    /// [`crate::replica::ReplicatingWorkload`] with a replicating mode).
    pub replica_dispatches: u64,
    /// Total µs spent sleeping in jittered retry backoff (threaded
    /// executors only; the simulator retries instantaneously).
    pub retry_backoff_us: u64,
    /// Completion reports rejected by the router's worker-epoch gate
    /// (quarantined workers' in-flight reports and duplicated-completion
    /// injections — threaded executor only).
    pub stale_completions_rejected: u64,
    /// Workers the supervisor respawned after a missed heartbeat
    /// (threaded executor only; zero unless supervision is enabled).
    pub worker_respawns: u64,
}

impl RunMetrics {
    /// Mean worker utilisation over the makespan, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.makespan == 0 || self.workers == 0 {
            return 0.0;
        }
        self.busy_us as f64 / (self.makespan as f64 * self.workers as f64)
    }

    /// Fraction of busy time that was wasted on discarded work.
    pub fn waste_ratio(&self) -> f64 {
        if self.busy_us == 0 {
            return 0.0;
        }
        self.wasted_us as f64 / self.busy_us as f64
    }

    /// Fraction of executed tasks that were stolen from another worker's
    /// lane, in `[0, 1]`. Zero when nothing ran or the executor has no
    /// lanes.
    pub fn steal_ratio(&self) -> f64 {
        let executed = self.tasks_delivered + self.tasks_discarded;
        if executed == 0 {
            return 0.0;
        }
        self.steals as f64 / executed as f64
    }

    /// Imbalance of lane routing: max over mean lane dispatch count. 1.0 is
    /// perfectly even; 0.0 when the executor reported no lanes.
    pub fn lane_imbalance(&self) -> f64 {
        if self.lane_dispatches.is_empty() {
            return 0.0;
        }
        let max = self.lane_dispatches.iter().copied().max().unwrap_or(0) as f64;
        let mean =
            self.lane_dispatches.iter().sum::<u64>() as f64 / self.lane_dispatches.len() as f64;
        if mean == 0.0 {
            return 0.0;
        }
        max / mean
    }
}

/// Render a trace as CSV (`id,name,worker,version,tag,start,end,discarded`),
/// one row per executed task — loadable into any plotting tool for Gantt
/// views of a run.
///
/// The `name` field is RFC-4180 quoted when it contains a comma, quote or
/// newline, so rows always parse back via [`trace_from_csv`] regardless of
/// what task names an application chooses.
pub fn trace_to_csv(trace: &[TaskTrace]) -> String {
    let mut out = String::from(
        "id,name,worker,version,tag,start,end,discarded
",
    );
    for t in trace {
        use std::fmt::Write as _;
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{}",
            t.id,
            tvs_trace::csv::csv_escape(t.name),
            t.worker,
            t.version.map(|v| v.to_string()).unwrap_or_default(),
            t.tag,
            t.start,
            t.end,
            t.discarded
        );
    }
    out
}

/// One parsed row of [`trace_to_csv`] output. Identical to [`TaskTrace`]
/// except that `name` is owned (the CSV cannot yield `&'static str`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRow {
    /// Task id.
    pub id: TaskId,
    /// Task kind name.
    pub name: String,
    /// Worker that ran it.
    pub worker: usize,
    /// Speculation version, if any.
    pub version: Option<SpecVersion>,
    /// Application tag.
    pub tag: u64,
    /// Start time, µs.
    pub start: Time,
    /// End time, µs.
    pub end: Time,
    /// Whether the output was discarded.
    pub discarded: bool,
}

/// Parse [`trace_to_csv`] output back into rows. Returns `None` on a
/// malformed header, row shape, quoting or field value.
pub fn trace_from_csv(csv: &str) -> Option<Vec<TraceRow>> {
    let mut lines = csv.lines();
    if lines.next()? != "id,name,worker,version,tag,start,end,discarded" {
        return None;
    }
    let mut rows = Vec::new();
    for line in lines {
        let f = tvs_trace::csv::csv_split(line)?;
        if f.len() != 8 {
            return None;
        }
        rows.push(TraceRow {
            id: f[0].parse().ok()?,
            name: f[1].clone(),
            worker: f[2].parse().ok()?,
            version: if f[3].is_empty() {
                None
            } else {
                Some(f[3].parse().ok()?)
            },
            tag: f[4].parse().ok()?,
            start: f[5].parse().ok()?,
            end: f[6].parse().ok()?,
            discarded: f[7].parse().ok()?,
        });
    }
    Some(rows)
}

/// Per-worker busy fraction over `[0, makespan]`, computed from a trace.
pub fn worker_utilization(trace: &[TaskTrace], workers: usize, makespan: Time) -> Vec<f64> {
    let mut busy = vec![0u64; workers];
    for t in trace {
        if t.worker < workers {
            busy[t.worker] += t
                .end
                .saturating_sub(t.start)
                .min(makespan.saturating_sub(t.start));
        }
    }
    busy.into_iter()
        .map(|b| {
            if makespan == 0 {
                0.0
            } else {
                (b as f64 / makespan as f64).min(1.0)
            }
        })
        .collect()
}

/// Aggregate `(count, busy_us, discarded)` per task kind, sorted by busy
/// time descending — the "where did the time go" view.
pub fn kind_breakdown(trace: &[TaskTrace]) -> Vec<(&'static str, u64, Time, u64)> {
    let mut map: std::collections::HashMap<&'static str, (u64, Time, u64)> =
        std::collections::HashMap::new();
    for t in trace {
        let e = map.entry(t.name).or_default();
        e.0 += 1;
        e.1 += t.end.saturating_sub(t.start);
        e.2 += t.discarded as u64;
    }
    let mut v: Vec<(&'static str, u64, Time, u64)> =
        map.into_iter().map(|(k, (c, b, d))| (k, c, b, d)).collect();
    v.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(b.0)));
    v
}

/// Full output of a simulation run: the workload (holding application
/// results), aggregate metrics and, optionally, the per-task trace.
pub struct SimReport<W> {
    /// The workload in its final state.
    pub workload: W,
    /// Aggregate metrics.
    pub metrics: RunMetrics,
    /// Per-task trace (present when tracing was enabled).
    pub trace: Vec<TaskTrace>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_math() {
        let m = RunMetrics {
            makespan: 100,
            busy_us: 150,
            workers: 2,
            ..Default::default()
        };
        assert!((m.utilization() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn utilization_degenerate_cases() {
        assert_eq!(RunMetrics::default().utilization(), 0.0);
        let m = RunMetrics {
            makespan: 0,
            busy_us: 10,
            workers: 4,
            ..Default::default()
        };
        assert_eq!(m.utilization(), 0.0);
    }

    fn tr(name: &'static str, worker: usize, start: Time, end: Time, discarded: bool) -> TaskTrace {
        TaskTrace {
            id: 0,
            name,
            worker,
            version: None,
            tag: 0,
            start,
            end,
            discarded,
        }
    }

    #[test]
    fn csv_rendering() {
        let trace = vec![tr("count", 0, 0, 10, false), tr("encode", 1, 5, 25, true)];
        let csv = trace_to_csv(&trace);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "id,name,worker,version,tag,start,end,discarded");
        assert_eq!(lines[1], "0,count,0,,0,0,10,false");
        assert_eq!(lines[2], "0,encode,1,,0,5,25,true");
    }

    #[test]
    fn csv_round_trip_with_awkward_names() {
        let trace = vec![
            TaskTrace {
                id: 3,
                name: "count, \"quoted\"",
                worker: 1,
                version: Some(7),
                tag: 42,
                start: 5,
                end: 25,
                discarded: true,
            },
            tr("encode", 0, 0, 10, false),
        ];
        let csv = trace_to_csv(&trace);
        let rows = trace_from_csv(&csv).expect("round-trip parses");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "count, \"quoted\"");
        assert_eq!(rows[0].version, Some(7));
        assert_eq!(rows[0].tag, 42);
        assert!(rows[0].discarded);
        assert_eq!(rows[1].name, "encode");
        assert_eq!(rows[1].version, None);
        assert!(trace_from_csv("bogus\n1,2").is_none());
    }

    #[test]
    fn utilization_per_worker() {
        let trace = vec![tr("a", 0, 0, 50, false), tr("b", 1, 0, 100, false)];
        let u = worker_utilization(&trace, 2, 100);
        assert!((u[0] - 0.5).abs() < 1e-12);
        assert!((u[1] - 1.0).abs() < 1e-12);
        assert_eq!(worker_utilization(&trace, 2, 0), vec![0.0, 0.0]);
    }

    #[test]
    fn breakdown_sorts_by_busy_time() {
        let trace = vec![
            tr("count", 0, 0, 10, false),
            tr("encode", 0, 10, 110, false),
            tr("encode", 1, 0, 100, true),
        ];
        let b = kind_breakdown(&trace);
        assert_eq!(b[0].0, "encode");
        assert_eq!(b[0].1, 2); // count
        assert_eq!(b[0].2, 200); // busy
        assert_eq!(b[0].3, 1); // discarded
        assert_eq!(b[1].0, "count");
    }

    #[test]
    fn waste_ratio() {
        let m = RunMetrics {
            busy_us: 200,
            wasted_us: 50,
            ..Default::default()
        };
        assert!((m.waste_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(RunMetrics::default().waste_ratio(), 0.0);
    }
}
