//! Platform models: the paper's two evaluation machines.
//!
//! We do not have an 8×Quad-Core Opteron or a Cell BE blade; the
//! discrete-event executor models them through this module instead. What
//! matters for the paper's observations is not clock speed but *structure*:
//!
//! * **x86 SMP** — workers take tasks straight from the scheduler when they
//!   go idle ("a simple polling mechanism waits for tasks to be assigned").
//! * **Cell BE** — software-managed 256 KB local stores force *multiple
//!   buffering*: ~4 tasks' worth of data are prefetched per worker
//!   (limiting task memory to 32 KB), so dispatch decisions are made early
//!   and a deep per-worker pipeline forms. The paper blames exactly this
//!   for the conservative policy's poor showing on Cell. Each task also
//!   pays a DMA transfer cost.

use crate::task::Time;

/// Maps a task's kind and payload size to a compute cost in virtual µs.
///
/// Applications provide this (the Huffman pipeline knows what a `count`
/// over 4 KB costs); the platform then scales it.
pub trait CostModel: Send + Sync {
    /// Cost in µs of running task `name` over `bytes` payload bytes on a
    /// reference (x86) core.
    fn cost_us(&self, name: &str, bytes: usize) -> Time;
}

/// A trivial cost model: every task costs the same. Useful in scheduler
/// unit tests.
#[derive(Debug, Clone, Copy)]
pub struct FixedCost(pub Time);

impl CostModel for FixedCost {
    fn cost_us(&self, _name: &str, _bytes: usize) -> Time {
        self.0
    }
}

/// An execution platform for the discrete-event executor.
#[derive(Debug, Clone)]
pub struct Platform {
    /// Human-readable name ("x86", "cell").
    pub name: &'static str,
    /// Number of worker threads ("in both cases, we use 16 worker
    /// threads").
    pub workers: usize,
    /// Multiplier applied to every compute cost (relative core speed).
    pub compute_scale: f64,
    /// Per-task dispatch bookkeeping overhead, µs.
    pub dispatch_overhead_us: Time,
    /// Per-task DMA in/out cost, µs (Cell local stores; 0 on x86).
    pub dma_us: Time,
    /// Per-worker prefetch queue depth (multiple buffering). 1 = take work
    /// only when idle (x86); 4 = the Cell's four-task overlay.
    pub prefetch_depth: usize,
    /// Maximum payload bytes a single task may touch (Cell: 32 KB local
    /// store slice). Checked at spawn by the executors.
    pub max_task_bytes: Option<usize>,
}

impl Platform {
    /// Total virtual cost of a task on this platform.
    pub fn task_cost_us(&self, model: &dyn CostModel, name: &str, bytes: usize) -> Time {
        let compute = (model.cost_us(name, bytes) as f64 * self.compute_scale).round() as Time;
        compute + self.dma_us + self.dispatch_overhead_us
    }

    /// Panic if `bytes` exceeds the local-store limit — mirroring how the
    /// real SRE statically sizes its task buffers.
    pub fn check_task_bytes(&self, name: &str, bytes: usize) {
        if let Some(max) = self.max_task_bytes {
            assert!(
                bytes <= max,
                "task '{name}' touches {bytes} bytes, exceeding the {max}-byte \
                 local-store limit of platform '{}'",
                self.name
            );
        }
    }
}

/// The paper's x86 machine: 8×Quad-Core Opteron, 16 worker threads.
pub fn x86_smp(workers: usize) -> Platform {
    Platform {
        name: "x86",
        workers,
        compute_scale: 1.0,
        dispatch_overhead_us: 1,
        dma_us: 0,
        prefetch_depth: 1,
        max_task_bytes: None,
    }
}

/// The paper's Cell BE blade: 16 SPE workers, 4-deep multiple buffering,
/// 32 KB task memory, per-task DMA.
pub fn cell_be(workers: usize) -> Platform {
    Platform {
        name: "cell",
        workers,
        // SPEs are markedly slower than the Opterons on byte-granular
        // scalar work (no branch prediction, no scalar datapath): the
        // per-task cost grows, which is also what creates lane contention
        // at the 4-deep prefetch refill points.
        compute_scale: 1.7,
        dispatch_overhead_us: 1,
        dma_us: 8,
        prefetch_depth: 4,
        max_task_bytes: Some(32 * 1024),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_cost_is_fixed() {
        let m = FixedCost(42);
        assert_eq!(m.cost_us("anything", 0), 42);
        assert_eq!(m.cost_us("else", 1 << 20), 42);
    }

    #[test]
    fn platform_cost_composition() {
        let p = Platform {
            compute_scale: 2.0,
            dma_us: 5,
            dispatch_overhead_us: 3,
            ..x86_smp(4)
        };
        assert_eq!(p.task_cost_us(&FixedCost(10), "t", 0), 10 * 2 + 5 + 3);
    }

    #[test]
    fn x86_defaults() {
        let p = x86_smp(16);
        assert_eq!(p.workers, 16);
        assert_eq!(p.prefetch_depth, 1);
        assert_eq!(p.dma_us, 0);
        assert!(p.max_task_bytes.is_none());
        p.check_task_bytes("big", 10 << 20); // unlimited
    }

    #[test]
    fn cell_defaults() {
        let p = cell_be(16);
        assert_eq!(p.prefetch_depth, 4);
        assert!(p.dma_us > 0);
        assert_eq!(p.max_task_bytes, Some(32 * 1024));
        p.check_task_bytes("ok", 32 * 1024);
    }

    #[test]
    #[should_panic(expected = "local-store limit")]
    fn cell_rejects_oversized_tasks() {
        cell_be(16).check_task_bytes("too-big", 32 * 1024 + 1);
    }
}
