//! The SuperTask role: dynamic data-flow graphs as callback-driven task
//! spawning.
//!
//! The paper's SRE "defines a hierarchy of node SuperTasks whose sole
//! purpose is to direct the flow of data between its child Tasks [...]
//! Supertasks are responsible for associating freshly arrived data with its
//! corresponding task." A [`Workload`] is exactly that: it receives input
//! blocks and task completions and spawns successors through a
//! [`SchedCtx`]. The DFG is thus "a snapshot of the application's dynamic
//! execution, rather than a static description".

use crate::task::{Payload, SpecVersion, TaskId, TaskSpec, Time};
use std::sync::Arc;

/// A block of input data fed into the system by the I/O thread.
#[derive(Clone, Debug)]
pub struct InputBlock {
    /// Sequential block index.
    pub index: usize,
    /// Arrival time, µs.
    pub arrival: Time,
    /// The block's bytes (shared; tasks capture clones of the `Arc`).
    pub data: Arc<[u8]>,
}

/// A delivered task completion.
pub struct Completion {
    /// Id of the finished task.
    pub id: TaskId,
    /// Task kind name (as given in its [`TaskSpec`]).
    pub name: &'static str,
    /// The task's speculation version, if any.
    pub version: Option<SpecVersion>,
    /// The application tag from the [`TaskSpec`].
    pub tag: u64,
    /// When the task started executing, µs.
    pub started: Time,
    /// When the task finished, µs.
    pub finished: Time,
    /// The task's output.
    pub output: Payload,
}

impl std::fmt::Debug for Completion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Completion")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("version", &self.version)
            .field("tag", &self.tag)
            .field("started", &self.started)
            .field("finished", &self.finished)
            .finish()
    }
}

/// Notice of a fault an executor recovered from: a task body panicked
/// (caught by `catch_unwind`) or the watchdog cancelled a stuck task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultNotice {
    /// Id of the faulted task.
    pub id: TaskId,
    /// Task kind name.
    pub name: &'static str,
    /// The task's speculation version, if any. The executor aborts the
    /// version through the regular rollback path right after this
    /// callback, so the workload only needs to update its own records
    /// (e.g. tell its speculation manager the version is dead).
    pub version: Option<SpecVersion>,
    /// The application tag from the task's `TaskSpec` — lets a workload
    /// identify *which* unit of its work was lost (e.g. which block) and
    /// re-spawn it, rather than only learning the task kind.
    pub tag: u64,
    /// Retry attempts already spent (0 on the first fault).
    pub attempt: u32,
}

/// Notice of a silent-data-corruption event raised by the replication
/// validation plane (see `crate::replica::ReplicatingWorkload`): the
/// digests of a primary task and its replica diverged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SdcNotice {
    /// Id of the primary task whose vote set diverged.
    pub id: TaskId,
    /// Task kind name.
    pub name: &'static str,
    /// The primary task's speculation version, if any.
    pub version: Option<SpecVersion>,
    /// `false` on first detection (a bounded tiebreak re-execution is
    /// about to run); `true` when the vote budget is exhausted without
    /// two digests ever agreeing. For an unresolved *versioned* task the
    /// plane aborts the version right after this callback — workloads
    /// that track version state should treat it like a fault notice and
    /// schedule a non-speculative replay.
    pub unresolved: bool,
}

/// Capabilities a workload has inside its callbacks.
pub trait SchedCtx {
    /// Current time, µs (virtual in the simulator, wall-derived otherwise).
    fn now(&self) -> Time;

    /// Spawn a task. Returns `None` if the task's version has already been
    /// rolled back (the spawn lost the race against the destroy signal).
    fn spawn(&mut self, spec: TaskSpec) -> Option<TaskId>;

    /// Roll back a speculation version: delete its ready tasks, flag its
    /// in-flight tasks, reject its future spawns.
    fn abort_version(&mut self, version: SpecVersion);
}

/// A streaming application: the SuperTask hierarchy collapsed into one
/// routing object (applications may still structure themselves
/// hierarchically inside).
pub trait Workload {
    /// Called once before any input arrives.
    fn on_start(&mut self, ctx: &mut dyn SchedCtx) {
        let _ = ctx;
    }

    /// A new input block arrived from the I/O thread.
    fn on_input(&mut self, ctx: &mut dyn SchedCtx, block: InputBlock);

    /// Called after the final input block has been delivered.
    fn on_input_done(&mut self, ctx: &mut dyn SchedCtx) {
        let _ = ctx;
    }

    /// A task completed and its output was *delivered* (not discarded).
    fn on_complete(&mut self, ctx: &mut dyn SchedCtx, done: Completion);

    /// A task faulted (panicked or was watchdog-cancelled) and its slot
    /// was reclaimed without an output. If the task carried a version the
    /// executor aborts it immediately after this callback; workloads that
    /// track version state (a speculation manager, wait buffers) should
    /// clear it here. Non-speculative faults only reach this callback
    /// once in-place retries are exhausted and the run is about to fail.
    /// Default: ignore.
    fn on_fault(&mut self, ctx: &mut dyn SchedCtx, fault: FaultNotice) {
        let _ = (ctx, fault);
    }

    /// Replication-based validation detected diverging outputs for one of
    /// this workload's tasks (silent data corruption). Called by the
    /// replication plane, not by executors; workloads that feed a
    /// speculation manager should count the failure into its breaker
    /// window here. See [`SdcNotice::unresolved`] for the two phases.
    /// Default: ignore.
    fn on_sdc(&mut self, ctx: &mut dyn SchedCtx, sdc: SdcNotice) {
        let _ = (ctx, sdc);
    }

    /// `true` once the application's result is complete; the executor stops
    /// when this holds and no tasks remain.
    fn is_finished(&self) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::payload;

    /// A minimal workload: counts bytes of every block via one task per
    /// block, summing on completion. Used to smoke-test the trait wiring.
    struct ByteSum {
        expected_blocks: usize,
        seen: usize,
        total: u64,
    }

    impl Workload for ByteSum {
        fn on_input(&mut self, ctx: &mut dyn SchedCtx, block: InputBlock) {
            let data = block.data.clone();
            ctx.spawn(TaskSpec::regular(
                "len",
                0,
                data.len(),
                block.index as u64,
                move |_| payload(data.len() as u64),
            ));
        }

        fn on_complete(&mut self, _ctx: &mut dyn SchedCtx, done: Completion) {
            self.total += *done.output.downcast::<u64>().unwrap();
            self.seen += 1;
        }

        fn is_finished(&self) -> bool {
            self.seen == self.expected_blocks
        }
    }

    /// A hand-rolled, inline executor used only here: validates that the
    /// trait contract is implementable without a real executor.
    struct MiniCtx {
        sched: crate::sched::Scheduler,
        now: Time,
    }

    impl SchedCtx for MiniCtx {
        fn now(&self) -> Time {
            self.now
        }
        fn spawn(&mut self, spec: TaskSpec) -> Option<TaskId> {
            self.sched.spawn(spec)
        }
        fn abort_version(&mut self, version: SpecVersion) {
            self.sched.abort_version(version);
        }
    }

    #[test]
    fn workload_contract_smoke() {
        let mut w = ByteSum {
            expected_blocks: 3,
            seen: 0,
            total: 0,
        };
        let mut ctx = MiniCtx {
            sched: crate::sched::Scheduler::new(crate::DispatchPolicy::NonSpeculative),
            now: 0,
        };
        w.on_start(&mut ctx);
        for i in 0..3usize {
            let data: Arc<[u8]> = vec![0u8; 10 * (i + 1)].into();
            w.on_input(
                &mut ctx,
                InputBlock {
                    index: i,
                    arrival: i as u64,
                    data,
                },
            );
        }
        w.on_input_done(&mut ctx);
        while let Some(mut d) = ctx.sched.dispatch() {
            let out = (d.run)(&d.ctx);
            ctx.sched.complete(d.id);
            ctx.now += 1;
            let completion = Completion {
                id: d.id,
                name: d.name,
                version: d.version,
                tag: d.tag,
                started: ctx.now - 1,
                finished: ctx.now,
                output: out,
            };
            w.on_complete(&mut ctx, completion);
        }
        assert!(w.is_finished());
        assert_eq!(w.total, 10 + 20 + 30);
    }
}
