//! Fault handling shared by the executors: structured run failure,
//! bounded retry, watchdog configuration and poison-recovering locks.
//!
//! The paper treats misspeculation as a first-class, recoverable event;
//! this module extends the same discipline to machine faults. A panicking
//! task body is caught (`catch_unwind`), reported as a fault, and routed
//! through the *existing* rollback path: speculative versions are aborted
//! and their undo journals replayed, non-speculative tasks are retried in
//! place with bounded exponential backoff, and only when retries are
//! exhausted does the run end — with a [`RunError`] value, never a process
//! abort.

use crate::task::{TaskCtx, TaskId};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Why a run failed. Returned by the executors' `try_run*` entry points;
/// the panicking `run*` wrappers turn it into a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// A non-speculative task panicked on every attempt the retry policy
    /// allowed. (Speculative tasks never produce this: their faults are
    /// absorbed by aborting the version.)
    TaskFailed {
        /// Task kind name.
        name: &'static str,
        /// Task id.
        id: TaskId,
        /// Body attempts made (initial run + retries).
        attempts: u32,
    },
    /// A runtime service thread (feeder, worker, router, watchdog) died
    /// outside a task body — a runtime bug, but still reported as a value
    /// so callers can fail their run instead of the process.
    WorkerLost {
        /// Which thread was lost.
        what: &'static str,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::TaskFailed { name, id, attempts } => write!(
                f,
                "task '{name}' (id {id}) panicked on all {attempts} attempts"
            ),
            RunError::WorkerLost { what } => {
                write!(f, "runtime thread '{what}' terminated abnormally")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Bounded exponential backoff for retrying panicked non-speculative
/// tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum body attempts (initial run included), ≥ 1.
    pub max_attempts: u32,
    /// Backoff before retry k (1-based) is `base_backoff_us << (k - 1)`,
    /// capped at [`RetryPolicy::max_backoff_us`]. Only the threaded
    /// executors sleep; the simulator retries instantaneously (backoff is
    /// a wall-clock concept), keeping virtual-time runs deterministic.
    pub base_backoff_us: u64,
    /// Backoff cap, µs.
    pub max_backoff_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_us: 100,
            max_backoff_us: 10_000,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry `attempt` (1-based), µs.
    pub fn backoff_us(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(32);
        self.base_backoff_us
            .saturating_mul(1u64 << shift)
            .min(self.max_backoff_us)
    }

    /// [`RetryPolicy::backoff_us`] with ±50% seeded jitter, µs.
    ///
    /// Exponential backoff with synchronized phases is self-defeating: if a
    /// shared cause (an injected stall burst, a contended resource) faults
    /// several tasks at once, fixed backoff wakes all their retries in the
    /// same instant. The jitter is a pure function of `(salt, attempt)` —
    /// executors pass the task id as the salt — so retry schedules stay
    /// reproducible per task while distinct tasks decorrelate. The result
    /// is in `[backoff/2, backoff*3/2)`, still capped at
    /// [`RetryPolicy::max_backoff_us`], and 0 stays 0.
    pub fn backoff_jittered_us(&self, attempt: u32, salt: u64) -> u64 {
        let base = self.backoff_us(attempt);
        if base == 0 {
            return 0;
        }
        let r = mix64(salt ^ 0x5851_F42D_4C95_7F2D_u64.wrapping_mul(u64::from(attempt)));
        (base / 2 + r % base).min(self.max_backoff_us)
    }
}

/// splitmix64 finalizer: a cheap, dependency-free bijective mixer. Also
/// used by the replication plane's deterministic task sampling.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Watchdog configuration: detect tasks exceeding a deadline and cancel
/// them (signal their abort flag and, for speculative tasks, abort their
/// version so the speculation manager restarts the work).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Running time after which a task is cancelled, µs.
    pub deadline_us: u64,
    /// Poll interval of the watchdog thread, µs (threaded executor only;
    /// the simulator fires exactly at `deadline_us` of virtual time).
    pub poll_us: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            deadline_us: 500_000,
            poll_us: 5_000,
        }
    }
}

/// Worker supervision configuration (threaded executor only): every worker
/// stamps a heartbeat clock each loop iteration, and a supervisor thread
/// quarantines workers whose heartbeat goes stale — bumping their epoch so
/// in-flight completion reports from the old incarnation are *rejected* at
/// the router's gate instead of double-committed, reassigning their ready
/// lane, and respawning a replacement on a fresh epoch.
///
/// False positives are safe by construction: a merely-slow worker whose
/// epoch was bumped exits at its next loop iteration, and its straggling
/// report is recovered through the regular fault path (the task is re-fed,
/// never committed twice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// A worker whose heartbeat is older than this is quarantined, µs.
    /// Must comfortably exceed the worker park timeout (100 ms) plus the
    /// longest well-behaved task body, or slow workers get churned — safe,
    /// but wasteful.
    pub heartbeat_timeout_us: u64,
    /// Poll interval of the supervisor thread, µs.
    pub poll_us: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            heartbeat_timeout_us: 1_000_000,
            poll_us: 10_000,
        }
    }
}

/// Lock `m`, recovering the guard when a panicking thread poisoned it.
///
/// Every shared structure in the executors is either plain data (lanes,
/// rings) or guarded state whose invariants are restored by the fault
/// path itself (scheduler + workload behind the commit lock: the faulting
/// task is routed through [`crate::sched::Scheduler::fault`] and version
/// rollback). Dying on the poison flag would turn one recovered panic
/// into a wedged runtime, which is exactly what this layer exists to
/// prevent.
pub fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`Mutex::into_inner`] with the same poison recovery as [`lock_recover`].
pub fn into_inner_recover<T>(m: Mutex<T>) -> T {
    m.into_inner().unwrap_or_else(PoisonError::into_inner)
}

/// Abort-aware wall-clock stall (threaded executors' interpretation of an
/// injected `Stall`): sleeps in small increments, returning early once the
/// task's version is aborted — which is how the watchdog unsticks a
/// stalled speculative task.
pub(crate) fn stall_wall(us: u64, ctx: &TaskCtx) {
    let t0 = Instant::now();
    let step = Duration::from_micros((us / 10).clamp(20, 500));
    while (t0.elapsed().as_micros() as u64) < us && !ctx.aborted() {
        std::thread::sleep(step);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff_us: 100,
            max_backoff_us: 1_000,
        };
        assert_eq!(p.backoff_us(1), 100);
        assert_eq!(p.backoff_us(2), 200);
        assert_eq!(p.backoff_us(3), 400);
        assert_eq!(p.backoff_us(4), 800);
        assert_eq!(p.backoff_us(5), 1_000, "capped");
        assert_eq!(p.backoff_us(40), 1_000, "huge attempts stay capped");
    }

    #[test]
    fn jittered_backoff_stays_in_band_and_is_deterministic() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff_us: 100,
            max_backoff_us: 1_000,
        };
        for attempt in 1..=6 {
            let base = p.backoff_us(attempt);
            for salt in [0u64, 1, 7, 0xDEAD_BEEF, u64::MAX] {
                let j = p.backoff_jittered_us(attempt, salt);
                assert!(
                    j >= base / 2 && j < base.saturating_mul(3) / 2 + 1,
                    "attempt {attempt} salt {salt}: {j} outside [{}, {})",
                    base / 2,
                    base * 3 / 2
                );
                assert!(j <= p.max_backoff_us);
                assert_eq!(
                    j,
                    p.backoff_jittered_us(attempt, salt),
                    "same (salt, attempt) must reproduce the same backoff"
                );
            }
        }
        // Distinct salts decorrelate: not all equal for a fixed attempt.
        let vals: std::collections::HashSet<u64> =
            (0..32).map(|salt| p.backoff_jittered_us(3, salt)).collect();
        assert!(vals.len() > 1, "jitter must vary across salts");
        // Zero base stays zero (no sleep where none was configured).
        let z = RetryPolicy {
            max_attempts: 3,
            base_backoff_us: 0,
            max_backoff_us: 0,
        };
        assert_eq!(z.backoff_jittered_us(1, 9), 0);
    }

    #[test]
    fn run_error_messages_are_readable() {
        let e = RunError::TaskFailed {
            name: "count",
            id: 7,
            attempts: 3,
        };
        assert_eq!(
            e.to_string(),
            "task 'count' (id 7) panicked on all 3 attempts"
        );
        let w = RunError::WorkerLost { what: "router" };
        assert!(w.to_string().contains("router"));
    }

    #[test]
    fn stall_exits_early_on_abort() {
        let ctx = TaskCtx::new();
        let flag = ctx.abort_flag();
        TaskCtx::signal_abort(&flag);
        let t0 = Instant::now();
        stall_wall(5_000_000, &ctx); // 5s if the abort were ignored
        assert!(t0.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn poison_recovery_yields_the_data() {
        let m = std::sync::Arc::new(Mutex::new(41));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        *lock_recover(&m) += 1;
        assert_eq!(
            into_inner_recover(std::sync::Arc::try_unwrap(m).unwrap()),
            42
        );
    }
}
