//! The coarse-grain task model.
//!
//! Tasks in the SRE are side-effect-free units of computation "with clearly
//! defined inputs and outputs" and execution times in the millisecond (here:
//! tens-of-microseconds to millisecond) range. A task is described by a
//! [`TaskSpec`]; once spawned it is identified by a [`TaskId`] and can carry
//! a speculation version tag and an abort flag.

use std::any::Any;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Virtual (or wall-clock-derived) time in microseconds.
pub type Time = u64;

/// Unique task identifier, assigned at spawn.
pub type TaskId = u64;

/// Monotonic speculation version; tasks tagged with an aborted version are
/// destroyed (ready) or flagged (running) during rollback.
pub type SpecVersion = u32;

/// Scheduling class of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskClass {
    /// Ordinary pipeline work on the natural (non-speculative) path.
    Regular,
    /// Ordinary pipeline work on a speculative path (must carry a version).
    Speculative,
    /// A value-prediction task. Always dispatched first — the paper gives
    /// "value predicting and verification tasks the highest priority, no
    /// matter where they are located in the pipeline".
    Predictor,
    /// A speculation-verification (check) task. Also always dispatched
    /// first.
    Check,
}

impl TaskClass {
    /// Whether tasks of this class are drained before any policy decision.
    pub fn is_control(self) -> bool {
        matches!(self, TaskClass::Predictor | TaskClass::Check)
    }

    /// The class as `tvs-trace`'s dependency-free mirror enum (that crate
    /// sits below this one, so it cannot import `TaskClass` itself).
    pub fn trace_tag(self) -> tvs_trace::ClassTag {
        match self {
            TaskClass::Regular => tvs_trace::ClassTag::Regular,
            TaskClass::Speculative => tvs_trace::ClassTag::Speculative,
            TaskClass::Predictor => tvs_trace::ClassTag::Predictor,
            TaskClass::Check => tvs_trace::ClassTag::Check,
        }
    }
}

/// The type-erased output of a task.
pub type Payload = Box<dyn Any + Send>;

/// Handle given to a running task body.
///
/// The only capability a side-effect-free task needs at run time is to learn
/// that its speculation was aborted while it runs, so it can stop early
/// ("launched tasks cannot be deleted; the system marks them with an abort
/// flag"). Honouring the flag is an optimisation, not a correctness
/// requirement — discarded outputs are dropped either way.
#[derive(Clone, Debug, Default)]
pub struct TaskCtx {
    abort: Arc<AtomicBool>,
}

impl TaskCtx {
    /// A fresh context with an unset abort flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` once the task's version has been rolled back.
    pub fn aborted(&self) -> bool {
        self.abort.load(Ordering::Relaxed)
    }

    /// The shared flag itself (held by the scheduler to signal aborts).
    pub(crate) fn abort_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.abort)
    }

    /// Raise the abort flag.
    pub(crate) fn signal_abort(flag: &AtomicBool) {
        flag.store(true, Ordering::Relaxed);
    }
}

/// The body of a task: consumes nothing but its captured inputs (tasks are
/// side-effect free), may poll `ctx.aborted()`, and returns its output.
///
/// `FnMut`, not `FnOnce`: a body that panics is caught by the executor and
/// — for non-speculative tasks — retried in place with bounded backoff, so
/// the same closure must be callable again. Bodies stay side-effect free,
/// so re-running one is always safe.
pub type TaskFn = Box<dyn FnMut(&TaskCtx) -> Payload + Send>;

/// Everything the scheduler needs to know to run a task.
pub struct TaskSpec {
    /// Task kind name; keys the cost model and appears in traces
    /// (e.g. `"count"`, `"reduce"`, `"tree"`, `"offset"`, `"encode"`).
    pub name: &'static str,
    /// Scheduling class.
    pub class: TaskClass,
    /// Pipeline depth: deeper (later-stage) tasks are preferred, the SRE's
    /// antidote to breadth-first FCFS which "extends latency and tends to
    /// be toxic to memory locality".
    pub depth: u32,
    /// Number of payload bytes the task touches; feeds the cost model and
    /// the Cell local-store admission check.
    pub bytes: usize,
    /// Speculation version for `Speculative`/version-bound control tasks.
    pub version: Option<SpecVersion>,
    /// Application-defined tag (e.g. block index) carried to the completion.
    pub tag: u64,
    /// When set, this task is a *replica*: a redundant re-execution of the
    /// referenced primary task, spawned for replication-based validation.
    /// The scheduler counts and traces replica spawns; delivery-side vote
    /// comparison lives above it (replicas are never routed to the
    /// workload's `on_complete`, so they cannot double-commit).
    pub replica_of: Option<TaskId>,
    /// The task body.
    pub run: TaskFn,
}

impl std::fmt::Debug for TaskSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskSpec")
            .field("name", &self.name)
            .field("class", &self.class)
            .field("depth", &self.depth)
            .field("bytes", &self.bytes)
            .field("version", &self.version)
            .field("tag", &self.tag)
            .field("replica_of", &self.replica_of)
            .finish()
    }
}

impl TaskSpec {
    /// A regular (non-speculative) task.
    pub fn regular(
        name: &'static str,
        depth: u32,
        bytes: usize,
        tag: u64,
        run: impl FnMut(&TaskCtx) -> Payload + Send + 'static,
    ) -> Self {
        TaskSpec {
            name,
            class: TaskClass::Regular,
            depth,
            bytes,
            version: None,
            tag,
            replica_of: None,
            run: Box::new(run),
        }
    }

    /// A speculative task tagged with `version`.
    pub fn speculative(
        name: &'static str,
        depth: u32,
        bytes: usize,
        version: SpecVersion,
        tag: u64,
        run: impl FnMut(&TaskCtx) -> Payload + Send + 'static,
    ) -> Self {
        TaskSpec {
            name,
            class: TaskClass::Speculative,
            depth,
            bytes,
            version: Some(version),
            tag,
            replica_of: None,
            run: Box::new(run),
        }
    }

    /// A value-prediction task (highest dispatch priority).
    pub fn predictor(
        name: &'static str,
        bytes: usize,
        version: SpecVersion,
        tag: u64,
        run: impl FnMut(&TaskCtx) -> Payload + Send + 'static,
    ) -> Self {
        TaskSpec {
            name,
            class: TaskClass::Predictor,
            depth: u32::MAX,
            bytes,
            version: Some(version),
            tag,
            replica_of: None,
            run: Box::new(run),
        }
    }

    /// A verification task (highest dispatch priority).
    ///
    /// Check tasks are *not* tagged with the version they examine: they must
    /// survive the rollback they themselves may trigger.
    pub fn check(
        name: &'static str,
        bytes: usize,
        tag: u64,
        run: impl FnMut(&TaskCtx) -> Payload + Send + 'static,
    ) -> Self {
        TaskSpec {
            name,
            class: TaskClass::Check,
            depth: u32::MAX,
            bytes,
            version: None,
            tag,
            replica_of: None,
            run: Box::new(run),
        }
    }

    /// Mark this task as a replica of `primary` (builder-style). Used by
    /// the replication-validation plane when it re-executes a completed
    /// task to vote on its output.
    pub fn as_replica_of(mut self, primary: TaskId) -> Self {
        self.replica_of = Some(primary);
        self
    }

    /// Whether this task runs on a speculative path.
    pub fn is_speculative(&self) -> bool {
        matches!(self.class, TaskClass::Speculative)
    }
}

/// Convenience for building payloads.
pub fn payload<T: Any + Send>(value: T) -> Payload {
    Box::new(value)
}

/// Downcast a payload, panicking with a readable message on type mismatch
/// (a routing bug in the workload, not a runtime condition).
pub fn expect_payload<T: Any>(p: Payload, what: &str) -> T {
    *p.downcast::<T>()
        .unwrap_or_else(|_| panic!("payload type mismatch: expected {what}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_flag_round_trip() {
        let ctx = TaskCtx::new();
        assert!(!ctx.aborted());
        let flag = ctx.abort_flag();
        TaskCtx::signal_abort(&flag);
        assert!(ctx.aborted());
    }

    #[test]
    fn control_classes() {
        assert!(TaskClass::Predictor.is_control());
        assert!(TaskClass::Check.is_control());
        assert!(!TaskClass::Regular.is_control());
        assert!(!TaskClass::Speculative.is_control());
    }

    #[test]
    fn constructors_set_classes_and_versions() {
        let r = TaskSpec::regular("count", 1, 4096, 7, |_| payload(1u32));
        assert_eq!(r.class, TaskClass::Regular);
        assert_eq!(r.version, None);
        assert!(!r.is_speculative());

        let s = TaskSpec::speculative("encode", 4, 4096, 3, 9, |_| payload(2u32));
        assert_eq!(s.class, TaskClass::Speculative);
        assert_eq!(s.version, Some(3));
        assert!(s.is_speculative());

        let p = TaskSpec::predictor("tree", 1024, 5, 0, |_| payload(3u32));
        assert_eq!(p.class, TaskClass::Predictor);
        assert_eq!(p.depth, u32::MAX);

        let c = TaskSpec::check("check", 0, 0, |_| payload(4u32));
        assert_eq!(c.class, TaskClass::Check);
        assert_eq!(c.version, None);
    }

    #[test]
    fn payload_round_trip() {
        let p = payload(vec![1u8, 2, 3]);
        let v: Vec<u8> = expect_payload(p, "Vec<u8>");
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "payload type mismatch")]
    fn payload_mismatch_panics() {
        let p = payload(42u32);
        let _: String = expect_payload(p, "String");
    }

    #[test]
    fn task_bodies_run_and_see_ctx() {
        let mut spec = TaskSpec::regular("t", 0, 0, 0, |ctx| payload(ctx.aborted()));
        let ctx = TaskCtx::new();
        let out = (spec.run)(&ctx);
        assert!(!expect_payload::<bool>(out, "bool"));
    }

    #[test]
    fn task_bodies_are_re_runnable_after_a_panicked_attempt() {
        // The executors retry panicked non-speculative bodies; FnMut makes
        // that legal. A counter capture shows the same closure runs twice.
        let mut calls = 0u32;
        let mut spec = TaskSpec::regular("flaky", 0, 0, 0, move |_| {
            calls += 1;
            if calls == 1 {
                panic!("first attempt fails");
            }
            payload(calls)
        });
        let ctx = TaskCtx::new();
        let first = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (spec.run)(&ctx)));
        assert!(first.is_err());
        let second = (spec.run)(&ctx);
        assert_eq!(expect_payload::<u32>(second, "u32"), 2);
    }
}
