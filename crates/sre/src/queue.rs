//! Ready queues with depth-favouring priority and FCFS tie-break.
//!
//! "Our platform uses a priority-based scheduling policy where depth is
//! favored, but uses FCFS for tasks of equal priority. [...] Value
//! predicting and verification tasks are given highest priority, no matter
//! where they are located in the pipeline."
//!
//! The queue is split three ways: a control queue (predictors and checks,
//! drained before any policy decision), a non-speculative queue and a
//! speculative queue; a [`DispatchPolicy`](crate::policy::DispatchPolicy)
//! arbitrates between the latter two. Rollback needs to delete all ready
//! tasks of a version, so entries are indexed by version as well.

use crate::policy::{DispatchPolicy, LaneLoads, QueueKind};
use crate::task::{SpecVersion, TaskClass, TaskId};
use std::collections::{BTreeMap, HashMap};

/// Orders ready tasks: deeper first, then FCFS (lower sequence number
/// first). `BTreeMap` iteration is ascending, so depth is stored inverted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct Rank {
    inv_depth: u32,
    seq: u64,
}

impl Rank {
    fn new(depth: u32, seq: u64) -> Self {
        Rank {
            inv_depth: u32::MAX - depth,
            seq,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    rank: Rank,
    lane: Lane,
    version: Option<SpecVersion>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lane {
    Control,
    Normal,
    Speculative,
}

/// The ready-task structure of the scheduler.
#[derive(Debug, Default)]
pub struct ReadyQueue {
    control: BTreeMap<Rank, TaskId>,
    normal: BTreeMap<Rank, TaskId>,
    spec: BTreeMap<Rank, TaskId>,
    index: HashMap<TaskId, IndexEntry>,
    seq: u64,
}

impl ReadyQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a ready task.
    pub fn push(&mut self, id: TaskId, class: TaskClass, depth: u32, version: Option<SpecVersion>) {
        let rank = Rank::new(depth, self.seq);
        self.seq += 1;
        let lane = match class {
            TaskClass::Predictor | TaskClass::Check => Lane::Control,
            TaskClass::Regular => Lane::Normal,
            TaskClass::Speculative => Lane::Speculative,
        };
        let map = match lane {
            Lane::Control => &mut self.control,
            Lane::Normal => &mut self.normal,
            Lane::Speculative => &mut self.spec,
        };
        map.insert(rank, id);
        self.index.insert(
            id,
            IndexEntry {
                rank,
                lane,
                version,
            },
        );
    }

    /// Take the next task to dispatch under `policy`, if any.
    ///
    /// Control tasks always win; otherwise the policy arbitrates between
    /// the non-speculative and speculative lanes using the caller-supplied
    /// per-lane busy time (for `Balanced`'s equal-share rule — the
    /// scheduler charges lanes as work is dispatched or completed).
    pub fn pop(
        &mut self,
        policy: DispatchPolicy,
        loads: LaneLoads,
        normal_pending_elsewhere: bool,
    ) -> Option<TaskId> {
        if let Some((_, id)) = self.control.pop_first() {
            self.index.remove(&id);
            return Some(id);
        }
        let kind = policy.choose(
            !self.normal.is_empty(),
            !self.spec.is_empty(),
            loads,
            normal_pending_elsewhere,
        )?;
        let map = match kind {
            QueueKind::Normal => &mut self.normal,
            QueueKind::Speculative => &mut self.spec,
        };
        let (_, id) = map.pop_first().expect("choose() saw a non-empty lane");
        self.index.remove(&id);
        Some(id)
    }

    /// Remove every ready task tagged with `version` (rollback's "ready
    /// tasks must be deleted"). Returns the removed ids.
    pub fn remove_version(&mut self, version: SpecVersion) -> Vec<TaskId> {
        let victims: Vec<TaskId> = self
            .index
            .iter()
            .filter(|(_, e)| e.version == Some(version))
            .map(|(&id, _)| id)
            .collect();
        for &id in &victims {
            let e = self.index.remove(&id).expect("indexed");
            let map = match e.lane {
                Lane::Control => &mut self.control,
                Lane::Normal => &mut self.normal,
                Lane::Speculative => &mut self.spec,
            };
            map.remove(&e.rank);
        }
        victims
    }

    /// Number of ready tasks in total.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether no task is ready.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Ready counts per lane: `(control, normal, speculative)`.
    pub fn lane_lens(&self) -> (usize, usize, usize) {
        (self.control.len(), self.normal.len(), self.spec.len())
    }

    /// Whether a non-control task is dispatchable under `policy`.
    pub fn has_dispatchable(&self, policy: DispatchPolicy) -> bool {
        !self.control.is_empty()
            || !self.normal.is_empty()
            || (policy.speculates() && !self.spec.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::DispatchPolicy::*;
    use crate::policy::LaneLoads;

    fn push_reg(q: &mut ReadyQueue, id: TaskId, depth: u32) {
        q.push(id, TaskClass::Regular, depth, None);
    }

    fn push_spec(q: &mut ReadyQueue, id: TaskId, depth: u32, v: SpecVersion) {
        q.push(id, TaskClass::Speculative, depth, Some(v));
    }

    #[test]
    fn depth_favoured_then_fcfs() {
        let mut q = ReadyQueue::new();
        push_reg(&mut q, 1, 0); // shallow, first
        push_reg(&mut q, 2, 5); // deep
        push_reg(&mut q, 3, 5); // deep, later
        push_reg(&mut q, 4, 2);
        assert_eq!(q.pop(NonSpeculative, LaneLoads::default(), false), Some(2)); // deepest, earliest
        assert_eq!(q.pop(NonSpeculative, LaneLoads::default(), false), Some(3)); // deepest, FCFS tie-break
        assert_eq!(q.pop(NonSpeculative, LaneLoads::default(), false), Some(4));
        assert_eq!(q.pop(NonSpeculative, LaneLoads::default(), false), Some(1));
        assert_eq!(q.pop(NonSpeculative, LaneLoads::default(), false), None);
    }

    #[test]
    fn control_tasks_preempt_everything() {
        let mut q = ReadyQueue::new();
        push_reg(&mut q, 1, 100);
        push_spec(&mut q, 2, 100, 0);
        q.push(3, TaskClass::Check, 0, None);
        q.push(4, TaskClass::Predictor, 0, Some(1));
        // Both control tasks first (FCFS between them since depth is MAX'd
        // by the TaskSpec constructors; here both depth 0 -> FCFS).
        assert_eq!(q.pop(Conservative, LaneLoads::default(), false), Some(3));
        assert_eq!(q.pop(Conservative, LaneLoads::default(), false), Some(4));
        assert_eq!(q.pop(Conservative, LaneLoads::default(), false), Some(1));
    }

    #[test]
    fn conservative_declines_spec_while_normal_is_bound_elsewhere() {
        let mut q = ReadyQueue::new();
        push_spec(&mut q, 1, 0, 0);
        // A non-speculative task waits in some worker's prefetch queue:
        // the machine is not idle, so conservative binds nothing.
        assert_eq!(q.pop(Conservative, LaneLoads::default(), true), None);
        // Other policies do not care.
        assert_eq!(q.pop(Aggressive, LaneLoads::default(), true), Some(1));
    }

    #[test]
    fn conservative_prefers_normal() {
        let mut q = ReadyQueue::new();
        push_spec(&mut q, 1, 9, 0);
        push_reg(&mut q, 2, 1);
        assert_eq!(q.pop(Conservative, LaneLoads::default(), false), Some(2));
        assert_eq!(q.pop(Conservative, LaneLoads::default(), false), Some(1)); // idle resources -> spec
    }

    #[test]
    fn aggressive_prefers_speculative() {
        let mut q = ReadyQueue::new();
        push_reg(&mut q, 1, 9);
        push_spec(&mut q, 2, 1, 0);
        assert_eq!(q.pop(Aggressive, LaneLoads::default(), false), Some(2));
        assert_eq!(q.pop(Aggressive, LaneLoads::default(), false), Some(1));
    }

    #[test]
    fn non_speculative_never_dispatches_spec() {
        let mut q = ReadyQueue::new();
        push_spec(&mut q, 1, 1, 0);
        assert_eq!(q.pop(NonSpeculative, LaneLoads::default(), false), None);
        assert!(!q.has_dispatchable(NonSpeculative));
        assert!(q.has_dispatchable(Conservative));
    }

    #[test]
    fn balanced_alternates_under_equal_charges() {
        // Emulate the scheduler: charge each lane equally per dispatch.
        let mut q = ReadyQueue::new();
        for i in 0..4 {
            push_reg(&mut q, 10 + i, 0);
            push_spec(&mut q, 20 + i, 0, 0);
        }
        let (mut bn, mut bs) = (0u64, 0u64);
        let mut order = Vec::new();
        while let Some(id) = q.pop(
            Balanced,
            LaneLoads {
                busy_normal_us: bn,
                busy_spec_us: bs,
                ..Default::default()
            },
            false,
        ) {
            if id >= 20 {
                bs += 10;
            } else {
                bn += 10;
            }
            order.push(id);
        }
        // Starts with normal (shares equal), then alternates.
        assert_eq!(order, vec![10, 20, 11, 21, 12, 22, 13, 23]);
    }

    #[test]
    fn balanced_weights_steer_towards_the_starved_lane() {
        let mut q = ReadyQueue::new();
        push_reg(&mut q, 1, 0);
        push_spec(&mut q, 2, 0, 0);
        // Speculation has consumed far more time: normal goes first.
        assert_eq!(
            q.pop(
                Balanced,
                LaneLoads {
                    busy_normal_us: 100,
                    busy_spec_us: 900,
                    ..Default::default()
                },
                false
            ),
            Some(1)
        );
        let mut q = ReadyQueue::new();
        push_reg(&mut q, 1, 0);
        push_spec(&mut q, 2, 0, 0);
        // Natural path has consumed more: speculation goes first.
        assert_eq!(
            q.pop(
                Balanced,
                LaneLoads {
                    busy_normal_us: 900,
                    busy_spec_us: 100,
                    ..Default::default()
                },
                false
            ),
            Some(2)
        );
    }

    #[test]
    fn remove_version_deletes_only_that_version() {
        let mut q = ReadyQueue::new();
        push_spec(&mut q, 1, 0, 7);
        push_spec(&mut q, 2, 0, 8);
        push_spec(&mut q, 3, 9, 7);
        push_reg(&mut q, 4, 0);
        let mut removed = q.remove_version(7);
        removed.sort_unstable();
        assert_eq!(removed, vec![1, 3]);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(Aggressive, LaneLoads::default(), false), Some(2));
        assert_eq!(q.pop(Aggressive, LaneLoads::default(), false), Some(4));
    }

    #[test]
    fn remove_version_on_empty_is_empty() {
        let mut q = ReadyQueue::new();
        assert!(q.remove_version(3).is_empty());
        assert!(q.is_empty());
    }

    #[test]
    fn lane_lens_track_contents() {
        let mut q = ReadyQueue::new();
        q.push(1, TaskClass::Check, 0, None);
        push_reg(&mut q, 2, 0);
        push_spec(&mut q, 3, 0, 0);
        push_spec(&mut q, 4, 0, 1);
        assert_eq!(q.lane_lens(), (1, 1, 2));
        assert_eq!(q.len(), 4);
    }
}
