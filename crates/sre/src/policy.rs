//! Dispatch policies — the paper's resource-allocation axis.
//!
//! "In the first conservative policy, we give priority to the natural
//! execution of the algorithm. Speculative tasks are dispatched only when no
//! non-speculative ones are available. The second aggressive algorithm
//! actively prefers any speculative task over non-speculative tasks.
//! Finally, the third favors dispatching an equal number of speculative and
//! non-speculative tasks. We denote this policy as balanced."

/// Which of the speculative / non-speculative ready queues a free worker
/// draws from. Control tasks (predictors and checks) bypass the policy and
/// are always drained first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DispatchPolicy {
    /// Never dispatch speculative tasks (and typically none are spawned):
    /// the baseline the paper plots as "Non-spec".
    NonSpeculative,
    /// Natural path first; speculation only on otherwise-idle resources.
    Conservative,
    /// Speculative tasks actively preferred.
    Aggressive,
    /// Equal *worker time* for speculative and non-speculative work (the
    /// default reading of the paper's balanced policy; see `choose`).
    Balanced,
    /// Equal *task counts* for the two lanes — the literal 1:1 reading.
    /// Kept as an ablation: with coarse speculative tasks it lockstep-
    /// throttles the natural path (see the `ablations` bench binary).
    BalancedTaskCount,
}

impl DispatchPolicy {
    /// All policies, in the paper's presentation order.
    pub const ALL: [DispatchPolicy; 4] = [
        DispatchPolicy::NonSpeculative,
        DispatchPolicy::Balanced,
        DispatchPolicy::Aggressive,
        DispatchPolicy::Conservative,
    ];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            DispatchPolicy::NonSpeculative => "non-spec",
            DispatchPolicy::Conservative => "conservative",
            DispatchPolicy::Aggressive => "aggressive",
            DispatchPolicy::Balanced => "balanced",
            DispatchPolicy::BalancedTaskCount => "balanced-count",
        }
    }

    /// Whether this policy permits speculation at all.
    pub fn speculates(self) -> bool {
        !matches!(self, DispatchPolicy::NonSpeculative)
    }

    /// Decide which queue to draw from, given which queues are non-empty
    /// and how much worker time each lane has consumed so far (used by
    /// `Balanced` to keep its equal share).
    ///
    /// `Balanced` splits *worker time*, not task counts: with equal-sized
    /// tasks the two are the same 1:1 dispatch ratio, but when speculative
    /// tasks are far coarser than natural ones (encodes vs counts in the
    /// Huffman benchmark), count-parity would lockstep-throttle the
    /// natural path below its demand and delay the final value — the
    /// opposite of the paper's observed "resilient" balanced behaviour.
    /// Time-parity gives the natural path everything it asks for up to half
    /// the machine and speculation the rest, which is also what makes
    /// balanced "combine the benefits of being aggressive when no
    /// rollbacks occur with the resiliency of the conservative policy".
    ///
    /// Returns `None` when nothing is dispatchable (both empty, or only a
    /// speculative task is available under `NonSpeculative`).
    /// `normal_pending_elsewhere` reports non-speculative tasks that are
    /// bound into worker prefetch queues but not yet executing (only
    /// possible on multiple-buffering platforms like the Cell). The
    /// conservative policy treats those as "non-speculative work is still
    /// available" and declines to bind speculative tasks — the paper's
    /// observed Cell behaviour: "It seems this deep pipeline always offers
    /// some non-speculative task, and little speculation is done overall."
    pub fn choose(
        self,
        normal_ready: bool,
        spec_ready: bool,
        loads: LaneLoads,
        normal_pending_elsewhere: bool,
    ) -> Option<QueueKind> {
        match (normal_ready, spec_ready) {
            (false, false) => None,
            (true, false) => Some(QueueKind::Normal),
            (false, true) => {
                if !self.speculates() {
                    return None;
                }
                if self == DispatchPolicy::Conservative && normal_pending_elsewhere {
                    // Leave the slot empty: natural work is still queued on
                    // some worker, so resources are not truly idle.
                    return None;
                }
                Some(QueueKind::Speculative)
            }
            (true, true) => Some(match self {
                DispatchPolicy::NonSpeculative | DispatchPolicy::Conservative => QueueKind::Normal,
                DispatchPolicy::Aggressive => QueueKind::Speculative,
                DispatchPolicy::Balanced => {
                    if loads.busy_spec_us < loads.busy_normal_us {
                        QueueKind::Speculative
                    } else {
                        QueueKind::Normal
                    }
                }
                DispatchPolicy::BalancedTaskCount => {
                    if loads.count_spec < loads.count_normal {
                        QueueKind::Speculative
                    } else {
                        QueueKind::Normal
                    }
                }
            }),
        }
    }
}

/// Per-lane load accounting fed into [`DispatchPolicy::choose`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneLoads {
    /// Worker time charged to the natural lane, µs.
    pub busy_normal_us: u64,
    /// Worker time charged to the speculative lane, µs.
    pub busy_spec_us: u64,
    /// Tasks dispatched from the natural lane.
    pub count_normal: u64,
    /// Tasks dispatched from the speculative lane.
    pub count_spec: u64,
}

/// The two policy-governed ready queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// Non-speculative (natural path) work.
    Normal,
    /// Speculative work.
    Speculative,
}

#[cfg(test)]
mod tests {
    use super::*;
    use DispatchPolicy::*;
    use QueueKind::*;

    fn busy(n: u64, s: u64) -> LaneLoads {
        LaneLoads {
            busy_normal_us: n,
            busy_spec_us: s,
            ..Default::default()
        }
    }

    #[test]
    fn empty_queues_yield_nothing() {
        for p in DispatchPolicy::ALL {
            assert_eq!(p.choose(false, false, busy(0, 0), false), None);
        }
    }

    #[test]
    fn single_available_queue_is_used_when_allowed() {
        for p in DispatchPolicy::ALL {
            assert_eq!(p.choose(true, false, busy(0, 0), false), Some(Normal));
        }
        assert_eq!(NonSpeculative.choose(false, true, busy(0, 0), false), None);
        for p in [Conservative, Aggressive, Balanced] {
            assert_eq!(p.choose(false, true, busy(0, 0), false), Some(Speculative));
        }
    }

    #[test]
    fn contention_resolution_matches_paper() {
        assert_eq!(
            Conservative.choose(true, true, busy(5, 5), false),
            Some(Normal)
        );
        assert_eq!(
            Aggressive.choose(true, true, busy(5, 5), false),
            Some(Speculative)
        );
        assert_eq!(
            NonSpeculative.choose(true, true, busy(5, 5), false),
            Some(Normal)
        );
    }

    #[test]
    fn balanced_prefers_the_lane_with_less_busy_time() {
        // Less speculative busy time so far -> speculative next.
        assert_eq!(
            Balanced.choose(true, true, busy(300, 200), false),
            Some(Speculative)
        );
        // Equal or more -> normal next.
        assert_eq!(
            Balanced.choose(true, true, busy(300, 300), false),
            Some(Normal)
        );
        assert_eq!(
            Balanced.choose(true, true, busy(200, 300), false),
            Some(Normal)
        );
    }

    #[test]
    fn balanced_converges_to_equal_time_shares() {
        // Natural tasks cost 10 µs, speculative 40 µs: balanced should
        // converge to equal *time*, i.e. a 4:1 dispatch count ratio.
        let (mut bn, mut bs) = (0u64, 0u64);
        let (mut n, mut s) = (0u64, 0u64);
        for _ in 0..500 {
            match Balanced.choose(true, true, busy(bn, bs), false).unwrap() {
                Normal => {
                    bn += 10;
                    n += 1;
                }
                Speculative => {
                    bs += 40;
                    s += 1;
                }
            }
        }
        assert!(bn.abs_diff(bs) <= 40, "time shares diverged: {bn} vs {bs}");
        assert!(n > 3 * s, "short natural tasks should dispatch more often");
    }

    #[test]
    fn balanced_task_count_alternates_by_count() {
        let loads = LaneLoads {
            busy_normal_us: 10,
            busy_spec_us: 9000,
            count_normal: 3,
            count_spec: 2,
        };
        // By time, speculation is saturated; by count it is behind — the
        // count variant still feeds it (the ablation's pathology).
        assert_eq!(
            BalancedTaskCount.choose(true, true, loads, false),
            Some(Speculative)
        );
        assert_eq!(Balanced.choose(true, true, loads, false), Some(Normal));
    }

    #[test]
    fn labels_and_speculation_flags() {
        assert_eq!(NonSpeculative.label(), "non-spec");
        assert_eq!(BalancedTaskCount.label(), "balanced-count");
        assert!(BalancedTaskCount.speculates());
        assert!(!NonSpeculative.speculates());
        assert!(Conservative.speculates());
        assert!(Aggressive.speculates());
        assert!(Balanced.speculates());
    }
}
