//! Replication-based output validation: detect silent data corruption,
//! don't just survive it.
//!
//! The paper's tolerance checks answer "was the *prediction* close
//! enough?" — they compare a speculated value against the realised one.
//! They say nothing about whether the computation itself produced the
//! right bytes: a bit flip in a task body's output commits silently,
//! because every fault the runtime handles so far is *loud* (a panic, a
//! stall, a lost completion). This module adds the classic
//! redundant-execution defence on top of the same abort/rollback
//! machinery: selected tasks are executed twice, both outputs are
//! digested, and diverging digests raise an SDC event instead of
//! committing garbage.
//!
//! The design is a *wrapper*, not an executor feature:
//! [`ReplicatingWorkload`] implements [`Workload`] around any inner
//! workload and intercepts the two places where replication happens —
//! spawns (to arm a task for re-execution) and completions (to hold the
//! primary's output until its replica votes). All three executors (sim,
//! baseline, threaded) therefore validate identically, with zero
//! executor-internal replica logic, and replicas can never double-commit
//! because the wrapper swallows their completions before the inner
//! workload sees them.
//!
//! ## Vote protocol
//!
//! * A replicated task's first completion (the *primary*) is digested and
//!   held in a flight record; a replica re-runs the same shared body.
//! * Replica completes: digests equal → deliver the primary (one commit,
//!   no divergence). Digests differ → **SDC detected**: raise
//!   [`SdcNotice`] (`unresolved: false`), count it, and spawn a bounded
//!   tiebreak re-execution — the first digest to match any earlier vote
//!   wins and its output is delivered under the primary's identity.
//! * Vote budget exhausted without a majority: raise [`SdcNotice`]
//!   (`unresolved: true`). Versioned tasks are rolled back through the
//!   ordinary abort path (undo journals replay, the speculation manager
//!   replays non-speculatively); unversioned tasks degrade to delivering
//!   the primary's original output, loudly counted as such.
//!
//! Digesting uses an application-supplied [`DigestFn`] because outputs are
//! type-erased [`crate::task::Payload`]s; task kinds the application cannot
//! digest are passed through unreplicated (counted, never silently).

use crate::fault::{lock_recover, mix64};
use crate::task::{SpecVersion, TaskClass, TaskCtx, TaskFn, TaskId, TaskSpec};
use crate::workload::{Completion, FaultNotice, InputBlock, SchedCtx, SdcNotice, Workload};
use std::any::Any;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use tvs_faults::{FaultInjector, FaultSite};
use tvs_metrics::{Counter, Gauge, MetricsHub};
use tvs_trace::{EventKind, Tracer};

/// How task outputs are validated.
///
/// `Tolerance` is the paper's scheme (check tasks compare predicted
/// against realised values); `Replicate` adds redundant execution and
/// digest comparison on top; `Both` runs the two together — tolerance
/// checks keep governing speculation while replication guards against
/// silent corruption of any sampled task's output.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ValidationMode {
    /// Tolerance checks only (the paper's baseline). The replication
    /// plane is a pass-through: no replicas, no digests, no overhead.
    #[default]
    Tolerance,
    /// Replication only: check tasks and a seeded, deterministic sample
    /// of ordinary tasks are executed twice and their digests compared.
    Replicate {
        /// Fraction of ordinary (non-check) tasks to replicate, in
        /// `[0, 1]`. Check tasks are always replicated — they are the
        /// commit gate, so a corrupted check is the worst-case SDC.
        sample_rate: f64,
    },
    /// Tolerance checks *and* replication together.
    Both {
        /// See [`ValidationMode::Replicate::sample_rate`].
        sample_rate: f64,
    },
}

impl ValidationMode {
    /// Whether this mode dispatches replicas at all.
    pub fn replicates(self) -> bool {
        !matches!(self, ValidationMode::Tolerance)
    }

    /// The ordinary-task sampling rate (0.0 under `Tolerance`).
    pub fn sample_rate(self) -> f64 {
        match self {
            ValidationMode::Tolerance => 0.0,
            ValidationMode::Replicate { sample_rate } | ValidationMode::Both { sample_rate } => {
                sample_rate
            }
        }
    }
}

/// Digests one task output for vote comparison.
///
/// Receives the task kind name and the output as `&dyn Any`; returns
/// `None` when this kind's output cannot be digested (the task is then
/// passed through unreplicated). Must be deterministic: two runs of the
/// same side-effect-free body must digest equal.
pub type DigestFn = Arc<dyn Fn(&'static str, &dyn Any) -> Option<u64> + Send + Sync>;

/// Counters of the replication plane, readable after a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaStats {
    /// Primary completions held for a replica vote.
    pub replicas_spawned: u64,
    /// Vote sets that resolved clean on the first comparison.
    pub replica_matches: u64,
    /// Vote sets that diverged at least once (one per flight, however
    /// many corrupt votes it absorbed).
    pub sdc_detected: u64,
    /// Diverged vote sets later resolved by a tiebreak re-execution.
    pub sdc_resolved: u64,
    /// Diverged vote sets that exhausted their vote budget without two
    /// digests ever agreeing.
    pub sdc_unresolved: u64,
    /// Completions delivered *without* replica validation despite the
    /// mode asking for it: undigestible output, replica spawn rejected
    /// (aborted version), or unresolved unversioned fallback.
    pub degraded: u64,
    /// Flight records dropped because their speculation version was
    /// rolled back before the vote finished.
    pub dropped_aborted: u64,
}

/// A task body shared between a primary and its replicas. `TaskFn` is not
/// `Clone`, so re-execution runs the *same* closure behind a mutex;
/// bodies are side-effect free, so re-running one is always legal.
/// `lock_recover` keeps an injected panic inside the body (which poisons
/// the mutex mid-call) from wedging the retry that follows it.
type SharedBody = Arc<Mutex<TaskFn>>;

fn shared_run(body: &SharedBody) -> TaskFn {
    let body = Arc::clone(body);
    Box::new(move |ctx: &TaskCtx| (lock_recover(&body))(ctx))
}

/// FNV-1a over the task kind name: part of the sampling hash.
fn name_hash(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Spawn-time metadata of a replicated task, kept so replicas (and
/// tiebreaks) can be spawned with the primary's exact shape.
struct Pending {
    name: &'static str,
    class: TaskClass,
    depth: u32,
    bytes: usize,
    version: Option<SpecVersion>,
    tag: u64,
    body: SharedBody,
}

fn replica_spec(meta: &Pending, primary: TaskId) -> TaskSpec {
    TaskSpec {
        name: meta.name,
        class: meta.class,
        depth: meta.depth,
        bytes: meta.bytes,
        version: meta.version,
        tag: meta.tag,
        replica_of: Some(primary),
        run: shared_run(&meta.body),
    }
}

/// An in-progress vote: the primary completed, replicas are running.
struct Flight {
    meta: Pending,
    /// `(digest, completion)` votes; index 0 is always the primary.
    votes: Vec<(u64, Completion)>,
    /// Whether this flight already diverged once (counts a single
    /// detection however many tiebreaks follow).
    detected: bool,
    /// Total executions spawned (primary + replicas), bounded by
    /// [`Plane::max_votes`].
    spawned: u32,
}

/// What one routed completion asks the wrapper to do, in order: notify
/// the inner workload of an SDC, deliver a completion, abort a version.
#[derive(Default)]
struct Routing {
    notice: Option<SdcNotice>,
    deliver: Option<Completion>,
    abort: Option<SpecVersion>,
}

/// The replication plane's state, split out of [`ReplicatingWorkload`] so
/// the interception context ([`SpyCtx`]) can borrow it mutably while the
/// inner workload is borrowed separately.
struct Plane {
    mode: ValidationMode,
    seed: u64,
    digest: DigestFn,
    max_votes: u32,
    tracked: HashMap<TaskId, Pending>,
    flights: HashMap<TaskId, Flight>,
    replica_of: HashMap<TaskId, TaskId>,
    stats: ReplicaStats,
    tracer: Tracer,
    hub: MetricsHub,
    injector: Option<FaultInjector>,
}

impl Plane {
    /// Deterministic, seed-driven sampling decision for an ordinary task.
    /// A pure function of `(seed, name, tag)` so the same run replicates
    /// the same tasks on every executor and every repeat.
    fn sampled(&self, name: &'static str, tag: u64) -> bool {
        let rate = self.mode.sample_rate();
        if rate >= 1.0 {
            return true;
        }
        if rate <= 0.0 {
            return false;
        }
        let h = mix64(self.seed ^ name_hash(name) ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        ((h >> 11) as f64 / (1u64 << 53) as f64) < rate
    }

    /// Intercepted spawn: arm the task for replication when the mode and
    /// the sampler say so, then spawn through the real context.
    fn spawn_tracked(&mut self, ctx: &mut dyn SchedCtx, mut spec: TaskSpec) -> Option<TaskId> {
        let replicate = self.mode.replicates()
            && spec.replica_of.is_none()
            && (spec.class == TaskClass::Check || self.sampled(spec.name, spec.tag));
        if !replicate {
            return ctx.spawn(spec);
        }
        let run = std::mem::replace(&mut spec.run, Box::new(|_| crate::task::payload(())));
        let body: SharedBody = Arc::new(Mutex::new(run));
        spec.run = shared_run(&body);
        let pending = Pending {
            name: spec.name,
            class: spec.class,
            depth: spec.depth,
            bytes: spec.bytes,
            version: spec.version,
            tag: spec.tag,
            body,
        };
        let id = ctx.spawn(spec)?;
        self.tracked.insert(id, pending);
        Some(id)
    }

    /// Route one delivered completion: a replica vote, a tracked primary,
    /// or (the common case) a plain task forwarded untouched.
    fn route(&mut self, ctx: &mut dyn SchedCtx, done: Completion) -> Routing {
        if let Some(primary) = self.replica_of.remove(&done.id) {
            return self.on_vote(ctx, primary, done);
        }
        if self.tracked.contains_key(&done.id) {
            return self.on_primary(ctx, done);
        }
        Routing {
            deliver: Some(done),
            ..Default::default()
        }
    }

    /// A tracked primary completed: digest it, hold it, spawn its replica.
    fn on_primary(&mut self, ctx: &mut dyn SchedCtx, done: Completion) -> Routing {
        let meta = self.tracked.remove(&done.id).expect("checked by route()");
        let Some(d) = (self.digest)(done.name, done.output.as_ref()) else {
            // The application cannot digest this kind: pass through.
            self.stats.degraded += 1;
            return Routing {
                deliver: Some(done),
                ..Default::default()
            };
        };
        let primary = done.id;
        match ctx.spawn(replica_spec(&meta, primary)) {
            Some(replica) => {
                self.stats.replicas_spawned += 1;
                self.replica_of.insert(replica, primary);
                self.flights.insert(
                    primary,
                    Flight {
                        meta,
                        votes: vec![(d, done)],
                        detected: false,
                        spawned: 2,
                    },
                );
                Routing::default()
            }
            None => {
                // Version aborted between completion and replica spawn:
                // the completion would be discarded anyway downstream,
                // but deliver honestly and count the missed validation.
                self.stats.degraded += 1;
                Routing {
                    deliver: Some(done),
                    ..Default::default()
                }
            }
        }
    }

    /// A replica vote arrived for `primary`.
    fn on_vote(&mut self, ctx: &mut dyn SchedCtx, primary: TaskId, done: Completion) -> Routing {
        let mut flight = match self.flights.remove(&primary) {
            Some(f) => f,
            None => {
                // Flight dropped by a version rollback; the vote is moot.
                self.stats.dropped_aborted += 1;
                return Routing::default();
            }
        };
        let Some(d) = (self.digest)(done.name, done.output.as_ref()) else {
            // Digest function changed its mind mid-flight (application
            // bug); degrade to the primary's original output.
            self.stats.degraded += 1;
            let primary_c = flight.votes.swap_remove(0).1;
            return Routing {
                deliver: Some(primary_c),
                ..Default::default()
            };
        };
        if let Some(pos) = flight.votes.iter().position(|(vd, _)| *vd == d) {
            return self.resolve(primary, flight, pos, done);
        }
        self.diverge(ctx, primary, flight, d, done)
    }

    /// Two digests agree: deliver the agreed output under the primary's
    /// identity and close the flight.
    fn resolve(
        &mut self,
        primary: TaskId,
        mut flight: Flight,
        pos: usize,
        done: Completion,
    ) -> Routing {
        if flight.detected {
            self.stats.sdc_resolved += 1;
            self.tracer
                .emit_control(EventKind::SdcResolved { id: primary });
            self.hub.add_control(Counter::SdcResolved, 1);
        } else {
            self.stats.replica_matches += 1;
            self.tracer
                .emit_control(EventKind::ReplicaMatch { id: primary });
            self.hub.add_control(Counter::ReplicaMatches, 1);
        }
        let deliver = if pos == 0 {
            // The primary's own digest won: deliver it untouched.
            flight.votes.swap_remove(0).1
        } else {
            // The primary was the corrupt vote. Deliver the fresh clean
            // output under the primary's identity so the inner workload
            // never learns replication happened.
            let p = &flight.votes[0].1;
            Completion {
                id: p.id,
                name: p.name,
                version: p.version,
                tag: p.tag,
                started: done.started,
                finished: done.finished,
                output: done.output,
            }
        };
        self.update_recall();
        Routing {
            deliver: Some(deliver),
            ..Default::default()
        }
    }

    /// The new vote matches nothing seen so far.
    fn diverge(
        &mut self,
        ctx: &mut dyn SchedCtx,
        primary: TaskId,
        mut flight: Flight,
        d: u64,
        done: Completion,
    ) -> Routing {
        let version = flight.meta.version;
        let name = flight.meta.name;
        let first = !flight.detected;
        flight.detected = true;
        if first {
            self.stats.sdc_detected += 1;
            self.tracer.emit_control(EventKind::SdcDetected {
                id: primary,
                version,
            });
            self.hub.add_control(Counter::SdcDetected, 1);
            self.update_recall();
        }
        flight.votes.push((d, done));
        if flight.spawned < self.max_votes {
            if let Some(replica) = ctx.spawn(replica_spec(&flight.meta, primary)) {
                flight.spawned += 1;
                self.stats.replicas_spawned += 1;
                self.replica_of.insert(replica, primary);
                self.flights.insert(primary, flight);
                let notice = first.then_some(SdcNotice {
                    id: primary,
                    name,
                    version,
                    unresolved: false,
                });
                return Routing {
                    notice,
                    ..Default::default()
                };
            }
        }
        // Vote budget exhausted (or the tiebreak spawn was rejected by a
        // concurrent rollback): no two digests ever agreed.
        self.stats.sdc_unresolved += 1;
        let notice = Some(SdcNotice {
            id: primary,
            name,
            version,
            unresolved: true,
        });
        if let Some(v) = version {
            // Roll the version back through the ordinary abort path; the
            // speculation layer above replays non-speculatively.
            Routing {
                notice,
                abort: Some(v),
                ..Default::default()
            }
        } else {
            // Nothing to roll back to: degrade to the primary's original
            // output rather than wedging the pipeline, and say so.
            self.stats.degraded += 1;
            let primary_c = flight.votes.swap_remove(0).1;
            Routing {
                notice,
                deliver: Some(primary_c),
                ..Default::default()
            }
        }
    }

    /// Drop all replication state of a rolled-back version. Replica
    /// completions of that version are discarded by the scheduler, so
    /// their flights can never resolve.
    fn drop_version(&mut self, version: SpecVersion) {
        self.tracked.retain(|_, p| p.version != Some(version));
        let before = self.flights.len();
        self.flights.retain(|_, f| f.meta.version != Some(version));
        self.stats.dropped_aborted += (before - self.flights.len()) as u64;
        let flights = &self.flights;
        self.replica_of
            .retain(|_, primary| flights.contains_key(primary));
    }

    /// Refresh the SDC-recall gauge against the fault injector's count of
    /// corruptions actually injected at the task-output site.
    fn update_recall(&mut self) {
        let Some(inj) = &self.injector else { return };
        let injected = inj.injected_at(FaultSite::TaskOutput);
        // No corruptions injected means nothing to miss: recall 100 %.
        let recall = (self.stats.sdc_detected.min(injected) * 1000)
            .checked_div(injected)
            .unwrap_or(1000);
        self.hub.gauge_set(Gauge::SdcRecallPermille, recall);
    }
}

/// The interception context handed to the inner workload: spawns are
/// routed through the plane (to arm replication), aborts clean the
/// plane's state before reaching the scheduler.
struct SpyCtx<'a> {
    ctx: &'a mut dyn SchedCtx,
    plane: &'a mut Plane,
}

impl SchedCtx for SpyCtx<'_> {
    fn now(&self) -> crate::task::Time {
        self.ctx.now()
    }

    fn spawn(&mut self, spec: TaskSpec) -> Option<TaskId> {
        self.plane.spawn_tracked(self.ctx, spec)
    }

    fn abort_version(&mut self, version: SpecVersion) {
        self.plane.drop_version(version);
        self.ctx.abort_version(version);
    }
}

/// Wraps any [`Workload`] with the replication validation plane. See the
/// module docs for the protocol; under [`ValidationMode::Tolerance`] the
/// wrapper is a strict pass-through.
pub struct ReplicatingWorkload<W> {
    inner: W,
    plane: Plane,
}

impl<W: Workload> ReplicatingWorkload<W> {
    /// Wrap `inner`. `seed` drives the deterministic ordinary-task
    /// sampler; `digest` maps task outputs to comparable digests.
    pub fn new(inner: W, mode: ValidationMode, seed: u64, digest: DigestFn) -> Self {
        ReplicatingWorkload {
            inner,
            plane: Plane {
                mode,
                seed,
                digest,
                max_votes: 5,
                tracked: HashMap::new(),
                flights: HashMap::new(),
                replica_of: HashMap::new(),
                stats: ReplicaStats::default(),
                tracer: Tracer::disabled(),
                hub: MetricsHub::disabled(),
                injector: None,
            },
        }
    }

    /// Record replication lifecycle events into `tracer`.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.plane.tracer = tracer;
    }

    /// Export replication counters and the recall gauge through `hub`.
    pub fn set_metrics(&mut self, hub: MetricsHub) {
        self.plane.hub = hub;
    }

    /// Let the plane compute detection recall against this injector's
    /// task-output corruption count (testing/chaos only).
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.plane.injector = Some(injector);
    }

    /// Cap on total executions per vote (primary + replicas). Default 5.
    pub fn set_max_votes(&mut self, max_votes: u32) {
        self.plane.max_votes = max_votes.max(2);
    }

    /// The plane's counters so far.
    pub fn stats(&self) -> ReplicaStats {
        self.plane.stats
    }

    /// The validation mode this wrapper runs under.
    pub fn mode(&self) -> ValidationMode {
        self.plane.mode
    }

    /// The wrapped workload.
    pub fn inner(&self) -> &W {
        &self.inner
    }

    /// The wrapped workload, mutably.
    pub fn inner_mut(&mut self) -> &mut W {
        &mut self.inner
    }
}

impl<W: Workload> Workload for ReplicatingWorkload<W> {
    fn on_start(&mut self, ctx: &mut dyn SchedCtx) {
        self.inner.on_start(&mut SpyCtx {
            ctx,
            plane: &mut self.plane,
        });
    }

    fn on_input(&mut self, ctx: &mut dyn SchedCtx, block: InputBlock) {
        self.inner.on_input(
            &mut SpyCtx {
                ctx,
                plane: &mut self.plane,
            },
            block,
        );
    }

    fn on_input_done(&mut self, ctx: &mut dyn SchedCtx) {
        self.inner.on_input_done(&mut SpyCtx {
            ctx,
            plane: &mut self.plane,
        });
    }

    fn on_complete(&mut self, ctx: &mut dyn SchedCtx, done: Completion) {
        let routing = self.plane.route(ctx, done);
        let mut spy = SpyCtx {
            ctx,
            plane: &mut self.plane,
        };
        if let Some(notice) = routing.notice {
            self.inner.on_sdc(&mut spy, notice);
        }
        if let Some(done) = routing.deliver {
            self.inner.on_complete(&mut spy, done);
        }
        if let Some(version) = routing.abort {
            spy.abort_version(version);
        }
    }

    fn on_fault(&mut self, ctx: &mut dyn SchedCtx, fault: FaultNotice) {
        // The executor aborts the version *after* this callback, through
        // the raw context — clean the plane's state here so in-flight
        // votes of the dying version cannot resolve later.
        if let Some(v) = fault.version {
            self.plane.drop_version(v);
        }
        self.plane.tracked.remove(&fault.id);
        self.inner.on_fault(
            &mut SpyCtx {
                ctx,
                plane: &mut self.plane,
            },
            fault,
        );
    }

    fn on_sdc(&mut self, ctx: &mut dyn SchedCtx, sdc: SdcNotice) {
        self.inner.on_sdc(
            &mut SpyCtx {
                ctx,
                plane: &mut self.plane,
            },
            sdc,
        );
    }

    fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::Scheduler;
    use crate::task::{expect_payload, payload, Time};
    use crate::DispatchPolicy;

    /// Digest for the toy workloads below: every output is a `u64`.
    fn u64_digest() -> DigestFn {
        Arc::new(|_, out| out.downcast_ref::<u64>().copied())
    }

    /// Toy workload: spawns one regular task per input block; sums
    /// delivered outputs; records SDC notices.
    struct Summer {
        expected: usize,
        seen: usize,
        total: u64,
        delivered_ids: Vec<TaskId>,
        sdc_notices: Vec<SdcNotice>,
    }

    impl Summer {
        fn new(expected: usize) -> Self {
            Summer {
                expected,
                seen: 0,
                total: 0,
                delivered_ids: Vec::new(),
                sdc_notices: Vec::new(),
            }
        }
    }

    impl Workload for Summer {
        fn on_input(&mut self, ctx: &mut dyn SchedCtx, block: InputBlock) {
            let n = block.data.len() as u64;
            ctx.spawn(TaskSpec::regular(
                "sum",
                0,
                block.data.len(),
                block.index as u64,
                move |_| payload(n),
            ));
        }

        fn on_complete(&mut self, _ctx: &mut dyn SchedCtx, done: Completion) {
            self.total += expect_payload::<u64>(done.output, "u64");
            self.delivered_ids.push(done.id);
            self.seen += 1;
        }

        fn on_sdc(&mut self, _ctx: &mut dyn SchedCtx, sdc: SdcNotice) {
            self.sdc_notices.push(sdc);
        }

        fn is_finished(&self) -> bool {
            self.seen == self.expected
        }
    }

    struct MiniCtx {
        sched: Scheduler,
        now: Time,
    }

    impl SchedCtx for MiniCtx {
        fn now(&self) -> Time {
            self.now
        }
        fn spawn(&mut self, spec: TaskSpec) -> Option<TaskId> {
            self.sched.spawn(spec)
        }
        fn abort_version(&mut self, version: SpecVersion) {
            self.sched.abort_version(version);
        }
    }

    /// Drive the toy scheduler to quiescence, delivering completions
    /// through the wrapper.
    fn drain<W: Workload>(ctx: &mut MiniCtx, w: &mut ReplicatingWorkload<W>) {
        while let Some(mut d) = ctx.sched.dispatch() {
            let out = (d.run)(&d.ctx);
            let outcome = ctx.sched.complete(d.id);
            ctx.now += 1;
            if outcome == crate::sched::CompletionOutcome::Discard {
                continue;
            }
            let completion = Completion {
                id: d.id,
                name: d.name,
                version: d.version,
                tag: d.tag,
                started: ctx.now - 1,
                finished: ctx.now,
                output: out,
            };
            w.on_complete(ctx, completion);
        }
    }

    fn feed(ctx: &mut MiniCtx, w: &mut ReplicatingWorkload<Summer>, blocks: &[usize]) {
        w.on_start(ctx);
        for (i, len) in blocks.iter().enumerate() {
            let data: Arc<[u8]> = vec![0u8; *len].into();
            w.on_input(
                ctx,
                InputBlock {
                    index: i,
                    arrival: i as u64,
                    data,
                },
            );
        }
        w.on_input_done(ctx);
        drain(ctx, w);
    }

    #[test]
    fn tolerance_mode_is_a_pass_through() {
        let mut w =
            ReplicatingWorkload::new(Summer::new(3), ValidationMode::Tolerance, 42, u64_digest());
        let mut ctx = MiniCtx {
            sched: Scheduler::new(DispatchPolicy::NonSpeculative),
            now: 0,
        };
        feed(&mut ctx, &mut w, &[10, 20, 30]);
        assert!(w.is_finished());
        assert_eq!(w.inner().total, 60);
        assert_eq!(w.stats(), ReplicaStats::default());
        assert_eq!(ctx.sched.stats().replicas_spawned, 0);
    }

    #[test]
    fn clean_replicas_match_and_never_double_commit() {
        let mut w = ReplicatingWorkload::new(
            Summer::new(3),
            ValidationMode::Replicate { sample_rate: 1.0 },
            42,
            u64_digest(),
        );
        let mut ctx = MiniCtx {
            sched: Scheduler::new(DispatchPolicy::NonSpeculative),
            now: 0,
        };
        feed(&mut ctx, &mut w, &[10, 20, 30]);
        assert!(w.is_finished());
        assert_eq!(w.inner().total, 60, "each block committed exactly once");
        assert_eq!(w.inner().seen, 3, "replicas never reach the workload");
        let s = w.stats();
        assert_eq!(s.replicas_spawned, 3);
        assert_eq!(s.replica_matches, 3);
        assert_eq!(s.sdc_detected, 0);
        assert_eq!(ctx.sched.stats().replicas_spawned, 3);
    }

    /// A workload whose single task returns a corrupt value on its first
    /// execution and the true value on every later one — the primary
    /// commits garbage, the replica and the tiebreak agree on truth.
    struct CorruptOnce {
        done: bool,
        delivered: Option<u64>,
        delivered_id: Option<TaskId>,
        spawned_id: Option<TaskId>,
        sdc_notices: Vec<SdcNotice>,
    }

    impl Workload for CorruptOnce {
        fn on_input(&mut self, ctx: &mut dyn SchedCtx, _block: InputBlock) {
            let mut runs = 0u64;
            self.spawned_id = ctx.spawn(TaskSpec::regular("val", 0, 8, 0, move |_| {
                runs += 1;
                payload(if runs == 1 { 666u64 } else { 7u64 })
            }));
        }

        fn on_complete(&mut self, _ctx: &mut dyn SchedCtx, done: Completion) {
            self.delivered = Some(expect_payload::<u64>(done.output, "u64"));
            self.delivered_id = Some(done.id);
            self.done = true;
        }

        fn on_sdc(&mut self, _ctx: &mut dyn SchedCtx, sdc: SdcNotice) {
            self.sdc_notices.push(sdc);
        }

        fn is_finished(&self) -> bool {
            self.done
        }
    }

    #[test]
    fn corrupt_primary_is_detected_and_outvoted() {
        let mut w = ReplicatingWorkload::new(
            CorruptOnce {
                done: false,
                delivered: None,
                delivered_id: None,
                spawned_id: None,
                sdc_notices: Vec::new(),
            },
            ValidationMode::Replicate { sample_rate: 1.0 },
            1,
            u64_digest(),
        );
        let mut ctx = MiniCtx {
            sched: Scheduler::new(DispatchPolicy::NonSpeculative),
            now: 0,
        };
        w.on_start(&mut ctx);
        let data: Arc<[u8]> = vec![0u8; 8].into();
        w.on_input(
            &mut ctx,
            InputBlock {
                index: 0,
                arrival: 0,
                data,
            },
        );
        drain(&mut ctx, &mut w);
        assert!(w.is_finished());
        assert_eq!(
            w.inner().delivered,
            Some(7),
            "the clean tiebreak output wins, not the corrupt primary"
        );
        assert_eq!(
            w.inner().delivered_id,
            w.inner().spawned_id,
            "delivered under the primary's identity"
        );
        let s = w.stats();
        assert_eq!(s.sdc_detected, 1);
        assert_eq!(s.sdc_resolved, 1);
        assert_eq!(s.replica_matches, 0);
        assert_eq!(s.sdc_unresolved, 0);
        assert_eq!(
            w.inner().sdc_notices,
            vec![SdcNotice {
                id: w.inner().spawned_id.unwrap(),
                name: "val",
                version: None,
                unresolved: false,
            }]
        );
    }

    /// A task that returns a different value on every execution: votes
    /// can never agree, exhausting the budget.
    struct NeverAgrees {
        done: bool,
        delivered: Option<u64>,
        sdc_notices: Vec<SdcNotice>,
    }

    impl Workload for NeverAgrees {
        fn on_input(&mut self, ctx: &mut dyn SchedCtx, _block: InputBlock) {
            let mut runs = 0u64;
            ctx.spawn(TaskSpec::regular("chaos", 0, 8, 0, move |_| {
                runs += 1;
                payload(runs * 1000)
            }));
        }

        fn on_complete(&mut self, _ctx: &mut dyn SchedCtx, done: Completion) {
            self.delivered = Some(expect_payload::<u64>(done.output, "u64"));
            self.done = true;
        }

        fn on_sdc(&mut self, _ctx: &mut dyn SchedCtx, sdc: SdcNotice) {
            self.sdc_notices.push(sdc);
        }

        fn is_finished(&self) -> bool {
            self.done
        }
    }

    #[test]
    fn exhausted_unversioned_vote_degrades_to_the_primary() {
        let mut w = ReplicatingWorkload::new(
            NeverAgrees {
                done: false,
                delivered: None,
                sdc_notices: Vec::new(),
            },
            ValidationMode::Both { sample_rate: 1.0 },
            1,
            u64_digest(),
        );
        w.set_max_votes(3);
        let mut ctx = MiniCtx {
            sched: Scheduler::new(DispatchPolicy::NonSpeculative),
            now: 0,
        };
        w.on_start(&mut ctx);
        let data: Arc<[u8]> = vec![0u8; 8].into();
        w.on_input(
            &mut ctx,
            InputBlock {
                index: 0,
                arrival: 0,
                data,
            },
        );
        drain(&mut ctx, &mut w);
        assert!(w.is_finished());
        assert_eq!(
            w.inner().delivered,
            Some(1000),
            "degrades to the primary's original output"
        );
        let s = w.stats();
        assert_eq!(s.sdc_detected, 1, "one detection per flight");
        assert_eq!(s.sdc_unresolved, 1);
        assert_eq!(s.sdc_resolved, 0);
        assert_eq!(s.degraded, 1);
        let notices = &w.inner().sdc_notices;
        assert_eq!(notices.len(), 2, "first detection + unresolved verdict");
        assert!(!notices[0].unresolved);
        assert!(notices[1].unresolved);
    }

    #[test]
    fn sampling_is_deterministic_and_checks_always_replicate() {
        let digest = u64_digest();
        let plane = |seed| {
            let w = ReplicatingWorkload::new(
                Summer::new(0),
                ValidationMode::Replicate { sample_rate: 0.5 },
                seed,
                Arc::clone(&digest),
            );
            w.plane
        };
        let a = plane(7);
        let b = plane(7);
        let c = plane(8);
        let decisions = |p: &Plane| {
            (0..64u64)
                .map(|tag| p.sampled("sum", tag))
                .collect::<Vec<_>>()
        };
        assert_eq!(decisions(&a), decisions(&b), "same seed, same sample");
        assert_ne!(decisions(&a), decisions(&c), "different seed differs");
        let hits = decisions(&a).iter().filter(|&&x| x).count();
        assert!(
            hits > 8 && hits < 56,
            "rate 0.5 samples a middling fraction, got {hits}/64"
        );
    }

    #[test]
    fn undigestible_outputs_pass_through_with_a_degraded_count() {
        // Digest only knows "sum" outputs of type u64; a String output
        // cannot be digested and must be delivered unreplicated.
        struct Stringy {
            done: bool,
            got: Option<String>,
        }
        impl Workload for Stringy {
            fn on_input(&mut self, ctx: &mut dyn SchedCtx, _block: InputBlock) {
                ctx.spawn(TaskSpec::regular("text", 0, 8, 0, |_| {
                    payload(String::from("hello"))
                }));
            }
            fn on_complete(&mut self, _ctx: &mut dyn SchedCtx, done: Completion) {
                self.got = Some(expect_payload::<String>(done.output, "String"));
                self.done = true;
            }
            fn is_finished(&self) -> bool {
                self.done
            }
        }
        let mut w = ReplicatingWorkload::new(
            Stringy {
                done: false,
                got: None,
            },
            ValidationMode::Replicate { sample_rate: 1.0 },
            1,
            u64_digest(),
        );
        let mut ctx = MiniCtx {
            sched: Scheduler::new(DispatchPolicy::NonSpeculative),
            now: 0,
        };
        w.on_start(&mut ctx);
        let data: Arc<[u8]> = vec![0u8; 8].into();
        w.on_input(
            &mut ctx,
            InputBlock {
                index: 0,
                arrival: 0,
                data,
            },
        );
        drain(&mut ctx, &mut w);
        assert_eq!(w.inner().got.as_deref(), Some("hello"));
        assert_eq!(w.stats().degraded, 1);
        assert_eq!(w.stats().replicas_spawned, 0);
    }

    #[test]
    fn version_rollback_drops_inflight_votes() {
        // A speculative task completes and its replica is in flight when
        // the version is rolled back: the flight must be dropped and the
        // replica's completion discarded, committing nothing.
        struct Spec {
            delivered: u64,
        }
        impl Workload for Spec {
            fn on_input(&mut self, ctx: &mut dyn SchedCtx, _block: InputBlock) {
                ctx.spawn(TaskSpec::speculative("spec", 0, 8, 9, 0, |_| payload(1u64)));
            }
            fn on_complete(&mut self, _ctx: &mut dyn SchedCtx, _done: Completion) {
                self.delivered += 1;
            }
            fn is_finished(&self) -> bool {
                false
            }
        }
        let mut w = ReplicatingWorkload::new(
            Spec { delivered: 0 },
            ValidationMode::Replicate { sample_rate: 1.0 },
            1,
            u64_digest(),
        );
        let mut ctx = MiniCtx {
            sched: Scheduler::new(DispatchPolicy::Balanced),
            now: 0,
        };
        w.on_start(&mut ctx);
        let data: Arc<[u8]> = vec![0u8; 8].into();
        w.on_input(
            &mut ctx,
            InputBlock {
                index: 0,
                arrival: 0,
                data,
            },
        );
        // Run only the primary; its completion spawns the replica.
        let mut d = ctx.sched.dispatch().expect("primary ready");
        let out = (d.run)(&d.ctx);
        assert_eq!(
            ctx.sched.complete(d.id),
            crate::sched::CompletionOutcome::Deliver
        );
        w.on_complete(
            &mut ctx,
            Completion {
                id: d.id,
                name: d.name,
                version: d.version,
                tag: d.tag,
                started: 0,
                finished: 1,
                output: out,
            },
        );
        assert_eq!(w.plane.flights.len(), 1, "vote in flight");
        // Roll the version back through the wrapper-visible path.
        let mut spy = SpyCtx {
            ctx: &mut ctx,
            plane: &mut w.plane,
        };
        spy.abort_version(9);
        assert!(
            w.plane.flights.is_empty(),
            "flight dropped with the version"
        );
        assert!(w.plane.replica_of.is_empty());
        assert_eq!(w.stats().dropped_aborted, 1);
        // The replica now dispatches already-aborted and is discarded.
        drain(&mut ctx, &mut w);
        assert_eq!(w.inner().delivered, 0, "nothing committed");
    }
}
