//! The scheduler core, shared by both executors.
//!
//! Owns the ready queue, the bodies of not-yet-dispatched tasks, the
//! metadata of in-flight tasks, and the set of aborted speculation versions.
//! The executors drive it: `spawn` → `dispatch` → run the body → `complete`.
//!
//! Rollback follows the paper's §III-B: "ready tasks must be deleted along
//! with the memory allocated for results. Launched tasks cannot be deleted;
//! the system marks them with an abort flag, and deletes them with their
//! content when they complete."

use crate::policy::{DispatchPolicy, LaneLoads};
use crate::queue::ReadyQueue;
use crate::task::{SpecVersion, TaskClass, TaskCtx, TaskFn, TaskId, TaskSpec};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use tvs_metrics::{Counter, Gauge, Hist, MetricsHub};
use tvs_trace::{EventKind, Tracer};

/// A task handed to an executor for execution.
pub struct Dispatched {
    /// Task id (pass back to [`Scheduler::complete`]).
    pub id: TaskId,
    /// Kind name.
    pub name: &'static str,
    /// Scheduling class.
    pub class: TaskClass,
    /// Version tag.
    pub version: Option<SpecVersion>,
    /// Application tag.
    pub tag: u64,
    /// Payload size in bytes (for the cost model).
    pub bytes: usize,
    /// The primary task this is a replica of, if any (see
    /// [`TaskSpec::replica_of`]).
    pub replica_of: Option<TaskId>,
    /// Context to pass to `run` (carries the abort flag).
    pub ctx: TaskCtx,
    /// The task body.
    pub run: TaskFn,
}

/// What `complete` decided about a finished task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionOutcome {
    /// Output is valid: deliver it to the workload.
    Deliver,
    /// The task's version was aborted while it ran: drop the output.
    Discard,
}

#[derive(Debug, Default, Clone)]
/// Scheduler-side counters (merged into [`crate::RunMetrics`] by executors).
pub struct SchedStats {
    /// Tasks spawned successfully.
    pub spawned: u64,
    /// Spawn attempts rejected because their version was already aborted.
    pub spawn_rejected: u64,
    /// Ready tasks deleted by rollbacks before ever running.
    pub deleted_ready: u64,
    /// Version aborts performed.
    pub rollbacks: u64,
    /// Tasks whose completion was discarded.
    pub discarded: u64,
    /// Tasks delivered.
    pub delivered: u64,
    /// Tasks whose body panicked (caught by the executor) or that the
    /// watchdog cancelled; their slot was reclaimed via [`Scheduler::fault`].
    pub faulted: u64,
    /// Duplicate completion deliveries tolerated (injected echoes that
    /// [`Scheduler::try_complete`] absorbed).
    pub duplicate_completions: u64,
    /// Replica tasks spawned for replication-based validation
    /// (`TaskSpec::replica_of` set).
    pub replicas_spawned: u64,
}

struct Running {
    version: Option<SpecVersion>,
    abort: Arc<AtomicBool>,
    class: TaskClass,
    /// Hub clock at dispatch, µs — stamped only for `Check` tasks on a
    /// live hub (feeds the check-latency histogram at completion).
    dispatched_at: u64,
}

/// The scheduler core. Not thread-safe by itself; executors wrap it.
pub struct Scheduler {
    policy: DispatchPolicy,
    queue: ReadyQueue,
    bodies: HashMap<TaskId, TaskSpec>,
    running: HashMap<TaskId, Running>,
    aborted: HashSet<SpecVersion>,
    next_id: TaskId,
    stats: SchedStats,
    loads: LaneLoads,
    tracer: Tracer,
    metrics: MetricsHub,
}

impl Scheduler {
    /// A scheduler dispatching under `policy`, with tracing disabled.
    pub fn new(policy: DispatchPolicy) -> Self {
        Self::with_tracer(policy, Tracer::disabled())
    }

    /// A scheduler that records rollback and ready-cancellation lifecycle
    /// events (on the tracer's control ring). The executors pass their run
    /// tracer in; `Tracer::disabled()` makes every emit a no-op branch.
    pub fn with_tracer(policy: DispatchPolicy, tracer: Tracer) -> Self {
        Scheduler {
            policy,
            queue: ReadyQueue::new(),
            bodies: HashMap::new(),
            running: HashMap::new(),
            aborted: HashSet::new(),
            next_id: 1,
            stats: SchedStats::default(),
            loads: LaneLoads::default(),
            tracer,
            metrics: MetricsHub::disabled(),
        }
    }

    /// Attach a metrics hub. The scheduler is the single feed for the
    /// lifecycle counters every executor shares (delivered / discarded /
    /// deleted-ready / rollbacks / duplicates) plus the check-latency and
    /// block-service histograms, so the counts can't diverge between
    /// executors or get double-counted.
    pub fn set_metrics(&mut self, metrics: MetricsHub) {
        self.metrics = metrics;
    }

    /// The active dispatch policy.
    pub fn policy(&self) -> DispatchPolicy {
        self.policy
    }

    /// Add a task. Returns `None` (and counts a rejection) when the task's
    /// version has already been rolled back — the destroy signal beats the
    /// spawn.
    pub fn spawn(&mut self, spec: TaskSpec) -> Option<TaskId> {
        if let Some(v) = spec.version {
            if self.aborted.contains(&v) {
                self.stats.spawn_rejected += 1;
                return None;
            }
        }
        if spec.is_speculative() && !self.policy.speculates() {
            // A NonSpeculative run must not receive speculative tasks; this
            // is a workload wiring bug, surface it loudly.
            panic!(
                "speculative task '{}' spawned under the non-speculative policy",
                spec.name
            );
        }
        let id = self.next_id;
        self.next_id += 1;
        if let Some(of) = spec.replica_of {
            self.stats.replicas_spawned += 1;
            self.metrics.add_control(Counter::ReplicaDispatches, 1);
            self.tracer
                .emit_control(EventKind::ReplicaDispatch { id, of });
        }
        self.queue.push(id, spec.class, spec.depth, spec.version);
        self.bodies.insert(id, spec);
        self.stats.spawned += 1;
        Some(id)
    }

    /// Take the next task to run, per class priorities and the dispatch
    /// policy.
    pub fn dispatch(&mut self) -> Option<Dispatched> {
        self.dispatch_with(false)
    }

    /// [`Self::dispatch`] with the multiple-buffering hint: whether
    /// non-speculative tasks are bound into worker prefetch queues but not
    /// yet executing (see
    /// [`DispatchPolicy::choose`](crate::policy::DispatchPolicy::choose)).
    pub fn dispatch_with(&mut self, normal_pending_elsewhere: bool) -> Option<Dispatched> {
        let id = self
            .queue
            .pop(self.policy, self.loads, normal_pending_elsewhere)?;
        let spec = self.bodies.remove(&id).expect("queued task has a body");
        match spec.class {
            TaskClass::Regular => self.loads.count_normal += 1,
            TaskClass::Speculative => self.loads.count_spec += 1,
            TaskClass::Predictor | TaskClass::Check => {}
        }
        let ctx = TaskCtx::new();
        let dispatched_at = if spec.class == TaskClass::Check && self.metrics.is_live() {
            self.metrics.now_us()
        } else {
            0
        };
        self.running.insert(
            id,
            Running {
                version: spec.version,
                abort: ctx.abort_flag(),
                class: spec.class,
                dispatched_at,
            },
        );
        Some(Dispatched {
            id,
            name: spec.name,
            class: spec.class,
            version: spec.version,
            tag: spec.tag,
            bytes: spec.bytes,
            replica_of: spec.replica_of,
            ctx,
            run: spec.run,
        })
    }

    /// Batch form of [`Self::dispatch_with`]: pop up to `limit` tasks in
    /// dispatch order. Used by the threaded executor's dispatch pump to
    /// amortise the commit lock over many ready-lane hand-offs.
    pub fn dispatch_batch(
        &mut self,
        limit: usize,
        normal_pending_elsewhere: bool,
    ) -> Vec<Dispatched> {
        let mut out = Vec::new();
        while out.len() < limit {
            match self.dispatch_with(normal_pending_elsewhere) {
                Some(d) => out.push(d),
                None => break,
            }
        }
        out
    }

    /// Cancel a dispatched-but-not-yet-executed task (bound into a worker's
    /// ready lane when its version was rolled back). The task never ran, so
    /// it counts as a ready deletion — the paper's "ready tasks must be
    /// deleted" — not as discarded work.
    pub fn cancel_bound(&mut self, id: TaskId) {
        let r = self
            .running
            .remove(&id)
            .expect("cancel_bound() called for a task that is not running");
        self.stats.deleted_ready += 1;
        self.metrics.add_control(Counter::DeletedReady, 1);
        self.tracer.emit_control(EventKind::CancelReady {
            id,
            version: r.version.unwrap_or(0),
        });
    }

    /// Whether any task could be dispatched right now.
    pub fn has_dispatchable(&self) -> bool {
        self.queue.has_dispatchable(self.policy)
    }

    /// Number of ready tasks (any class).
    pub fn ready_len(&self) -> usize {
        self.queue.len()
    }

    /// Number of in-flight (dispatched, not completed) tasks.
    pub fn running_len(&self) -> usize {
        self.running.len()
    }

    /// Charge `busy_us` of worker time to `class`'s lane — the input to
    /// `Balanced`'s equal-share rule. Executors call this as soon as they
    /// know a dispatched task's cost (the simulator: at assignment; the
    /// threaded runtime: at completion). Control tasks are not charged:
    /// they bypass the policy anyway.
    pub fn charge(&mut self, class: TaskClass, busy_us: u64) {
        match class {
            TaskClass::Regular => self.loads.busy_normal_us += busy_us,
            TaskClass::Speculative => self.loads.busy_spec_us += busy_us,
            TaskClass::Predictor | TaskClass::Check => return,
        }
        self.metrics.record(Hist::BlockServiceUs, busy_us);
    }

    /// Per-lane charged busy time `(normal, speculative)`, µs.
    pub fn lane_busy_us(&self) -> (u64, u64) {
        (self.loads.busy_normal_us, self.loads.busy_spec_us)
    }

    /// The full per-lane load accounting (busy time + dispatch counts).
    pub fn lane_loads(&self) -> LaneLoads {
        self.loads
    }

    /// Report a dispatched task as finished. The executor then either
    /// delivers the output to the workload or drops it.
    pub fn complete(&mut self, id: TaskId) -> CompletionOutcome {
        self.try_complete(id)
            .expect("complete() called for a task that is not running")
    }

    /// Duplicate-tolerant [`Self::complete`]: returns `None` (and counts a
    /// tolerated duplicate) when `id` is not in flight — the task already
    /// completed or faulted, so this delivery is an echo. Fault-injection
    /// chaos runs duplicate completions on purpose; executors route every
    /// completion through here so the echo is absorbed instead of
    /// panicking.
    pub fn try_complete(&mut self, id: TaskId) -> Option<CompletionOutcome> {
        let r = match self.running.remove(&id) {
            Some(r) => r,
            None => {
                self.stats.duplicate_completions += 1;
                self.metrics.add_control(Counter::DuplicateCompletions, 1);
                return None;
            }
        };
        if r.class == TaskClass::Check && self.metrics.is_live() {
            let lat = self.metrics.now_us().saturating_sub(r.dispatched_at);
            self.metrics.record(Hist::CheckLatencyUs, lat);
        }
        let aborted = r
            .version
            .map(|v| self.aborted.contains(&v))
            .unwrap_or(false);
        Some(if aborted {
            self.stats.discarded += 1;
            self.metrics.add_control(Counter::TasksDiscarded, 1);
            CompletionOutcome::Discard
        } else {
            self.stats.delivered += 1;
            self.metrics.add_control(Counter::TasksDelivered, 1);
            CompletionOutcome::Deliver
        })
    }

    /// Reclaim the slot of a running task whose body panicked (caught by
    /// the executor) or that the watchdog cancelled. Returns the task's
    /// version so the caller can route it through the rollback path; no
    /// output is delivered or discarded. Idempotent against races with
    /// completion: an unknown id returns `None` without counting.
    pub fn fault(&mut self, id: TaskId) -> Option<Option<SpecVersion>> {
        let r = self.running.remove(&id)?;
        self.stats.faulted += 1;
        Some(r.version)
    }

    /// Roll back a speculation version: delete its ready tasks, flag its
    /// running tasks, and reject its future spawns.
    ///
    /// Returns the number of ready tasks deleted.
    pub fn abort_version(&mut self, version: SpecVersion) -> usize {
        if !self.aborted.insert(version) {
            return 0; // already aborted; idempotent
        }
        self.stats.rollbacks += 1;
        self.metrics.add_control(Counter::Rollbacks, 1);
        let victims = self.queue.remove_version(version);
        for id in &victims {
            self.bodies.remove(id);
        }
        self.stats.deleted_ready += victims.len() as u64;
        self.metrics
            .add_control(Counter::DeletedReady, victims.len() as u64);
        self.metrics
            .gauge_max(Gauge::CascadeMax, victims.len() as u64);
        for r in self.running.values() {
            if r.version == Some(version) {
                TaskCtx::signal_abort(&r.abort);
            }
        }
        self.tracer.emit_control(EventKind::Rollback {
            version,
            cascade_depth: victims.len() as u64,
        });
        victims.len()
    }

    /// Whether `version` has been rolled back.
    pub fn is_aborted(&self, version: SpecVersion) -> bool {
        self.aborted.contains(&version)
    }

    /// Scheduler counters.
    pub fn stats(&self) -> &SchedStats {
        &self.stats
    }

    /// `true` when no task is ready or running.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.running.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::payload;

    fn reg(name: &'static str, depth: u32) -> TaskSpec {
        TaskSpec::regular(name, depth, 0, 0, |_| payload(()))
    }

    fn spec_task(name: &'static str, v: SpecVersion) -> TaskSpec {
        TaskSpec::speculative(name, 0, 0, v, 0, |_| payload(()))
    }

    #[test]
    fn spawn_dispatch_complete_cycle() {
        let mut s = Scheduler::new(DispatchPolicy::Balanced);
        assert!(s.is_idle());
        let id = s.spawn(reg("a", 0)).unwrap();
        assert!(!s.is_idle());
        assert_eq!(s.ready_len(), 1);
        let d = s.dispatch().unwrap();
        assert_eq!(d.id, id);
        assert_eq!(s.ready_len(), 0);
        assert_eq!(s.running_len(), 1);
        assert_eq!(s.complete(id), CompletionOutcome::Deliver);
        assert!(s.is_idle());
        assert_eq!(s.stats().delivered, 1);
    }

    #[test]
    fn abort_deletes_ready_tasks() {
        let mut s = Scheduler::new(DispatchPolicy::Aggressive);
        s.spawn(spec_task("e1", 5)).unwrap();
        s.spawn(spec_task("e2", 5)).unwrap();
        s.spawn(spec_task("other", 6)).unwrap();
        assert_eq!(s.abort_version(5), 2);
        assert_eq!(s.ready_len(), 1);
        assert_eq!(s.stats().deleted_ready, 2);
        assert_eq!(s.stats().rollbacks, 1);
        // idempotent
        assert_eq!(s.abort_version(5), 0);
        assert_eq!(s.stats().rollbacks, 1);
    }

    #[test]
    fn abort_flags_running_tasks_and_discards_their_output() {
        let mut s = Scheduler::new(DispatchPolicy::Aggressive);
        let id = s.spawn(spec_task("enc", 9)).unwrap();
        let d = s.dispatch().unwrap();
        assert!(!d.ctx.aborted());
        s.abort_version(9);
        assert!(d.ctx.aborted(), "in-flight task must see the abort flag");
        assert_eq!(s.complete(id), CompletionOutcome::Discard);
        assert_eq!(s.stats().discarded, 1);
    }

    #[test]
    fn spawns_into_aborted_version_are_rejected() {
        let mut s = Scheduler::new(DispatchPolicy::Balanced);
        s.abort_version(3);
        assert!(s.spawn(spec_task("late", 3)).is_none());
        assert_eq!(s.stats().spawn_rejected, 1);
        // Other versions unaffected.
        assert!(s.spawn(spec_task("ok", 4)).is_some());
    }

    #[test]
    fn non_aborted_version_completes_normally() {
        let mut s = Scheduler::new(DispatchPolicy::Conservative);
        let id = s.spawn(spec_task("enc", 1)).unwrap();
        // Abort a *different* version.
        s.abort_version(2);
        let _d = s.dispatch().unwrap();
        assert_eq!(s.complete(id), CompletionOutcome::Deliver);
    }

    #[test]
    #[should_panic(expected = "non-speculative policy")]
    fn speculative_spawn_under_non_spec_policy_panics() {
        let mut s = Scheduler::new(DispatchPolicy::NonSpeculative);
        let _ = s.spawn(spec_task("oops", 1));
    }

    #[test]
    #[should_panic(expected = "not running")]
    fn completing_unknown_task_panics() {
        let mut s = Scheduler::new(DispatchPolicy::Balanced);
        let _ = s.complete(99);
    }

    #[test]
    fn fault_reclaims_slot_and_reports_version() {
        let mut s = Scheduler::new(DispatchPolicy::Aggressive);
        let id = s.spawn(spec_task("enc", 4)).unwrap();
        let _d = s.dispatch().unwrap();
        assert_eq!(s.fault(id), Some(Some(4)));
        assert_eq!(s.stats().faulted, 1);
        assert!(s.is_idle(), "faulted slot was reclaimed");
        // A second fault (or a racing completion echo) is absorbed.
        assert_eq!(s.fault(id), None);
        assert_eq!(s.stats().faulted, 1);
        assert_eq!(s.try_complete(id), None);
        assert_eq!(s.stats().duplicate_completions, 1);
    }

    #[test]
    fn try_complete_absorbs_duplicate_deliveries() {
        let mut s = Scheduler::new(DispatchPolicy::Balanced);
        let id = s.spawn(reg("a", 0)).unwrap();
        let _d = s.dispatch().unwrap();
        assert_eq!(s.try_complete(id), Some(CompletionOutcome::Deliver));
        assert_eq!(s.try_complete(id), None, "echo is absorbed");
        assert_eq!(s.stats().delivered, 1);
        assert_eq!(s.stats().duplicate_completions, 1);
    }

    #[test]
    fn checks_survive_rollbacks() {
        let mut s = Scheduler::new(DispatchPolicy::Aggressive);
        s.spawn(TaskSpec::check("check", 0, 0, |_| payload(())))
            .unwrap();
        s.spawn(spec_task("enc", 1)).unwrap();
        s.abort_version(1);
        // The check is version-less and must still dispatch (first).
        let d = s.dispatch().unwrap();
        assert_eq!(d.name, "check");
        assert_eq!(s.complete(d.id), CompletionOutcome::Deliver);
    }

    #[test]
    fn rollback_and_cancel_bound_emit_trace_events() {
        use tvs_trace::{EventKind, Tracer};
        let tracer = Tracer::enabled(1);
        let mut s = Scheduler::with_tracer(DispatchPolicy::Aggressive, tracer.clone());
        s.spawn(spec_task("bound", 5)).unwrap();
        s.spawn(spec_task("queued", 5)).unwrap();
        let d = s.dispatch().unwrap(); // "bound": dispatched into a lane
        s.abort_version(5); // deletes "queued" from the ready queue
        s.cancel_bound(d.id); // lane re-validation kills "bound"
        let log = tracer.drain().unwrap();
        assert!(log.events.iter().any(|e| e.kind
            == EventKind::Rollback {
                version: 5,
                cascade_depth: 1
            }));
        assert!(log.events.iter().any(|e| e.kind
            == EventKind::CancelReady {
                id: d.id,
                version: 5
            }));
        // Idempotent re-abort emits nothing new.
        let before = s.stats().rollbacks;
        s.abort_version(5);
        assert_eq!(s.stats().rollbacks, before);
        assert_eq!(tracer.drain().unwrap().events.len(), 0);
    }

    #[test]
    fn replica_spawns_are_counted_and_traced() {
        use tvs_trace::{EventKind, Tracer};
        let tracer = Tracer::enabled(1);
        let mut s = Scheduler::with_tracer(DispatchPolicy::Balanced, tracer.clone());
        let primary = s.spawn(reg("count", 0)).unwrap();
        let replica = s.spawn(reg("count", 0).as_replica_of(primary)).unwrap();
        assert_eq!(s.stats().replicas_spawned, 1);
        assert_eq!(s.stats().spawned, 2);
        let d1 = s.dispatch().unwrap();
        let d2 = s.dispatch().unwrap();
        let of = [d1, d2]
            .iter()
            .find(|d| d.id == replica)
            .and_then(|d| d.replica_of);
        assert_eq!(of, Some(primary), "replica_of survives dispatch");
        let log = tracer.drain().unwrap();
        assert!(log.events.iter().any(|e| e.kind
            == EventKind::ReplicaDispatch {
                id: replica,
                of: primary
            }));
    }

    #[test]
    fn dispatch_respects_balanced_time_shares() {
        let mut s = Scheduler::new(DispatchPolicy::Balanced);
        s.spawn(reg("n1", 0)).unwrap();
        s.spawn(reg("n2", 0)).unwrap();
        s.spawn(spec_task("s1", 1)).unwrap();
        s.spawn(spec_task("s2", 1)).unwrap();
        // Charge each lane equal cost per dispatch -> strict alternation.
        let mut names = Vec::new();
        while let Some(d) = s.dispatch() {
            s.charge(d.class, 10);
            names.push(d.name);
        }
        assert_eq!(names, vec!["n1", "s1", "n2", "s2"]);
    }

    #[test]
    fn balanced_gives_starved_lane_priority() {
        let mut s = Scheduler::new(DispatchPolicy::Balanced);
        s.spawn(reg("n1", 0)).unwrap();
        s.spawn(spec_task("s1", 1)).unwrap();
        // Speculation already consumed much more time than the natural
        // path: the natural task must dispatch first.
        s.charge(TaskClass::Speculative, 1000);
        s.charge(TaskClass::Regular, 10);
        assert_eq!(s.lane_busy_us(), (10, 1000));
        let d = s.dispatch().unwrap();
        assert_eq!(d.name, "n1");
    }
}
