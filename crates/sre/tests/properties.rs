//! Property-based tests for the runtime: the ready queue against a
//! reference model, scheduler lifecycle invariants, and discrete-event
//! determinism under arbitrary workload shapes.

use proptest::prelude::*;
use tvs_sre::exec::sim::{run, SimConfig};
use tvs_sre::policy::LaneLoads;
use tvs_sre::queue::ReadyQueue;
use tvs_sre::task::{payload, TaskClass, TaskSpec};
use tvs_sre::workload::{Completion, InputBlock, SchedCtx, Workload};
use tvs_sre::{x86_smp, CostModel, DispatchPolicy, Scheduler, Time};

// ---------------------------------------------------------------------
// Ready queue vs a transparent reference model
// ---------------------------------------------------------------------

/// The reference: a plain vector, popped by scanning for the best-ranked
/// entry per the documented rules (control first; then the policy lane;
/// within a lane, deepest first, FCFS tie-break).
#[derive(Clone, Debug)]
struct ModelEntry {
    id: u64,
    class: TaskClass,
    depth: u32,
    version: Option<u32>,
    seq: u64,
}

fn model_pop(
    entries: &mut Vec<ModelEntry>,
    policy: DispatchPolicy,
    loads: LaneLoads,
) -> Option<u64> {
    let best = |es: &[(usize, &ModelEntry)]| -> Option<usize> {
        es.iter()
            .min_by_key(|(_, e)| (u32::MAX - e.depth, e.seq))
            .map(|(i, _)| *i)
    };
    fn by_lane(entries: &[ModelEntry], want_spec: bool) -> Vec<(usize, &ModelEntry)> {
        entries
            .iter()
            .enumerate()
            .filter(|(_, e)| match e.class {
                TaskClass::Regular => !want_spec,
                TaskClass::Speculative => want_spec,
                _ => false,
            })
            .collect()
    }
    // Control first.
    let control: Vec<(usize, &ModelEntry)> = entries
        .iter()
        .enumerate()
        .filter(|(_, e)| e.class.is_control())
        .collect();
    if let Some(i) = best(&control) {
        return Some(entries.remove(i).id);
    }
    let normal = by_lane(entries, false);
    let spec = by_lane(entries, true);
    let kind = policy.choose(!normal.is_empty(), !spec.is_empty(), loads, false)?;
    let pick = match kind {
        tvs_sre::policy::QueueKind::Normal => best(&normal),
        tvs_sre::policy::QueueKind::Speculative => best(&spec),
    }?;
    Some(entries.remove(pick).id)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The BTreeMap-backed queue agrees with the brute-force model under
    /// arbitrary interleavings of pushes, pops and version removals.
    #[test]
    fn prop_queue_matches_model(
        ops in proptest::collection::vec(
            prop_oneof![
                // (class selector, depth, version)
                (0u8..4, 0u32..5, 0u32..3).prop_map(|(c, d, v)| (0u8, c, d, v)),
                Just((1u8, 0, 0, 0)),                 // pop
                (0u32..3).prop_map(|v| (2u8, 0, 0, v)), // remove_version
            ],
            1..120,
        ),
        policy_ix in 0usize..4,
    ) {
        let policy = [
            DispatchPolicy::NonSpeculative,
            DispatchPolicy::Conservative,
            DispatchPolicy::Aggressive,
            DispatchPolicy::Balanced,
        ][policy_ix];
        let mut q = ReadyQueue::new();
        let mut model: Vec<ModelEntry> = Vec::new();
        let mut next_id = 0u64;
        let mut seq = 0u64;
        for (op, c, d, v) in ops {
            match op {
                0 => {
                    let class = match c {
                        0 => TaskClass::Regular,
                        1 => TaskClass::Speculative,
                        2 => TaskClass::Predictor,
                        _ => TaskClass::Check,
                    };
                    // NonSpeculative runs don't receive speculative tasks.
                    if class == TaskClass::Speculative && !policy.speculates() {
                        continue;
                    }
                    let version =
                        (class == TaskClass::Speculative).then_some(v);
                    next_id += 1;
                    q.push(next_id, class, d, version);
                    model.push(ModelEntry { id: next_id, class, depth: d, version, seq });
                    seq += 1;
                }
                1 => {
                    let got = q.pop(policy, LaneLoads::default(), false);
                    let want = model_pop(&mut model, policy, LaneLoads::default());
                    prop_assert_eq!(got, want);
                }
                _ => {
                    let mut got = q.remove_version(v);
                    got.sort_unstable();
                    let mut want: Vec<u64> = model
                        .iter()
                        .filter(|e| e.version == Some(v))
                        .map(|e| e.id)
                        .collect();
                    want.sort_unstable();
                    model.retain(|e| e.version != Some(v));
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(q.len(), model.len());
        }
    }

    /// Scheduler conservation: every spawned task is exactly once either
    /// (a) dispatched and completed, (b) deleted by a rollback while
    /// ready, or (c) rejected at spawn.
    #[test]
    fn prop_scheduler_conserves_tasks(
        ops in proptest::collection::vec(
            prop_oneof![
                (0u32..4).prop_map(|v| (0u8, v)), // spawn spec v
                Just((1u8, 0)),                   // spawn regular
                Just((2u8, 0)),                   // dispatch+complete one
                (0u32..4).prop_map(|v| (3u8, v)), // abort version v
            ],
            1..200,
        ),
    ) {
        let mut s = Scheduler::new(DispatchPolicy::Aggressive);
        let mut spawned = 0u64;
        let mut completed = 0u64;
        for (op, v) in ops {
            match op {
                0 => {
                    if s.spawn(TaskSpec::speculative("s", 0, 0, v, 0, |_| payload(()))).is_some() {
                        spawned += 1;
                    }
                }
                1 => {
                    s.spawn(TaskSpec::regular("r", 0, 0, 0, |_| payload(()))).unwrap();
                    spawned += 1;
                }
                2 => {
                    if let Some(d) = s.dispatch() {
                        s.complete(d.id);
                        completed += 1;
                    }
                }
                _ => {
                    s.abort_version(v);
                }
            }
        }
        // Drain what remains.
        while let Some(d) = s.dispatch() {
            s.complete(d.id);
            completed += 1;
        }
        let st = s.stats();
        prop_assert_eq!(st.spawned, spawned);
        prop_assert_eq!(completed, st.delivered + st.discarded);
        prop_assert_eq!(spawned, completed + st.deleted_ready);
        prop_assert!(s.is_idle());
    }
}

// ---------------------------------------------------------------------
// DES determinism under arbitrary fan-out workloads
// ---------------------------------------------------------------------

/// A workload whose shape is driven by a byte script: each completed task
/// spawns `script[tag] % 3` children until the budget is exhausted.
struct FanOut {
    script: Vec<u8>,
    spawned: usize,
    seen: usize,
}

impl FanOut {
    fn child(&mut self, ctx: &mut dyn SchedCtx, tag: u64) {
        if self.spawned >= self.script.len() {
            return;
        }
        self.spawned += 1;
        ctx.spawn(TaskSpec::regular(
            "t",
            (tag % 7) as u32,
            (tag as usize % 5) * 100,
            tag,
            |_| payload(()),
        ));
    }
}

impl Workload for FanOut {
    fn on_start(&mut self, ctx: &mut dyn SchedCtx) {
        self.child(ctx, 1);
    }
    fn on_input(&mut self, _ctx: &mut dyn SchedCtx, _b: InputBlock) {}
    fn on_complete(&mut self, ctx: &mut dyn SchedCtx, done: Completion) {
        self.seen += 1;
        let n = self.script.get(done.tag as usize).copied().unwrap_or(0) % 3;
        for i in 0..n {
            self.child(ctx, done.tag * 3 + i as u64 + 1);
        }
    }
    fn is_finished(&self) -> bool {
        self.seen >= self.spawned && self.spawned > 0
    }
}

struct TagCost;
impl CostModel for TagCost {
    fn cost_us(&self, _name: &str, bytes: usize) -> Time {
        10 + bytes as Time
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Same script, same platform -> byte-identical traces; and the trace
    /// respects worker exclusivity (no overlapping tasks on one worker).
    #[test]
    fn prop_sim_deterministic_and_exclusive(
        script in proptest::collection::vec(any::<u8>(), 1..100),
        workers in 1usize..6,
    ) {
        let cfg = SimConfig {
            platform: x86_smp(workers),
            policy: DispatchPolicy::NonSpeculative,
            trace: true,
        };
        let mk = || FanOut { script: script.clone(), spawned: 0, seen: 0 };
        let a = run(mk(), &cfg, &TagCost, vec![]);
        let b = run(mk(), &cfg, &TagCost, vec![]);
        prop_assert_eq!(&a.trace, &b.trace);
        prop_assert_eq!(a.metrics.makespan, b.metrics.makespan);
        // Worker exclusivity.
        for w in 0..workers {
            let mut spans: Vec<(Time, Time)> = a
                .trace
                .iter()
                .filter(|t| t.worker == w)
                .map(|t| (t.start, t.end))
                .collect();
            spans.sort_unstable();
            for pair in spans.windows(2) {
                prop_assert!(pair[1].0 >= pair[0].1, "worker {w} overlap: {pair:?}");
            }
        }
        // Conservation: every spawned task traced exactly once.
        prop_assert_eq!(a.trace.len(), a.workload.spawned);
    }
}
