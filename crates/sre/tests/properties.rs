//! Property-based tests for the runtime: the ready queue against a
//! reference model, scheduler lifecycle invariants, discrete-event
//! determinism under arbitrary workload shapes, and cross-executor output
//! equivalence (simulator vs work-stealing threads vs the single-lock
//! baseline).
//!
//! Hand-rolled seeded-loop properties (`tvs_rng::cases`): the offline build
//! has no proptest, and deterministic per-case seeds reproduce failures
//! exactly.

use std::sync::Arc;
use tvs_rng::cases;
use tvs_sre::exec::baseline::run as run_baseline;
use tvs_sre::exec::sim::{run as run_sim, SimConfig};
use tvs_sre::exec::threaded::{run as run_threaded, ThreadedConfig};
use tvs_sre::policy::LaneLoads;
use tvs_sre::queue::ReadyQueue;
use tvs_sre::task::{payload, TaskClass, TaskSpec};
use tvs_sre::workload::{Completion, InputBlock, SchedCtx, Workload};
use tvs_sre::{x86_smp, CostModel, DispatchPolicy, Scheduler, Time};

// ---------------------------------------------------------------------
// Ready queue vs a transparent reference model
// ---------------------------------------------------------------------

/// The reference: a plain vector, popped by scanning for the best-ranked
/// entry per the documented rules (control first; then the policy lane;
/// within a lane, deepest first, FCFS tie-break).
#[derive(Clone, Debug)]
struct ModelEntry {
    id: u64,
    class: TaskClass,
    depth: u32,
    version: Option<u32>,
    seq: u64,
}

fn model_pop(
    entries: &mut Vec<ModelEntry>,
    policy: DispatchPolicy,
    loads: LaneLoads,
) -> Option<u64> {
    let best = |es: &[(usize, &ModelEntry)]| -> Option<usize> {
        es.iter()
            .min_by_key(|(_, e)| (u32::MAX - e.depth, e.seq))
            .map(|(i, _)| *i)
    };
    fn by_lane(entries: &[ModelEntry], want_spec: bool) -> Vec<(usize, &ModelEntry)> {
        entries
            .iter()
            .enumerate()
            .filter(|(_, e)| match e.class {
                TaskClass::Regular => !want_spec,
                TaskClass::Speculative => want_spec,
                _ => false,
            })
            .collect()
    }
    // Control first.
    let control: Vec<(usize, &ModelEntry)> = entries
        .iter()
        .enumerate()
        .filter(|(_, e)| e.class.is_control())
        .collect();
    if let Some(i) = best(&control) {
        return Some(entries.remove(i).id);
    }
    let normal = by_lane(entries, false);
    let spec = by_lane(entries, true);
    let kind = policy.choose(!normal.is_empty(), !spec.is_empty(), loads, false)?;
    let pick = match kind {
        tvs_sre::policy::QueueKind::Normal => best(&normal),
        tvs_sre::policy::QueueKind::Speculative => best(&spec),
    }?;
    Some(entries.remove(pick).id)
}

/// The BTreeMap-backed queue agrees with the brute-force model under
/// arbitrary interleavings of pushes, pops and version removals.
#[test]
fn prop_queue_matches_model() {
    cases(0x51EE7, 64, |rng, case| {
        let policy = [
            DispatchPolicy::NonSpeculative,
            DispatchPolicy::Conservative,
            DispatchPolicy::Aggressive,
            DispatchPolicy::Balanced,
        ][rng.random_range(0..4usize)];
        let mut q = ReadyQueue::new();
        let mut model: Vec<ModelEntry> = Vec::new();
        let mut next_id = 0u64;
        let mut seq = 0u64;
        let n_ops = rng.random_range(1..120usize);
        for _ in 0..n_ops {
            match rng.random_range(0..3u8) {
                0 => {
                    let class = match rng.random_range(0..4u8) {
                        0 => TaskClass::Regular,
                        1 => TaskClass::Speculative,
                        2 => TaskClass::Predictor,
                        _ => TaskClass::Check,
                    };
                    // NonSpeculative runs don't receive speculative tasks.
                    if class == TaskClass::Speculative && !policy.speculates() {
                        continue;
                    }
                    let depth = rng.random_range(0..5u32);
                    let v = rng.random_range(0..3u32);
                    let version = (class == TaskClass::Speculative).then_some(v);
                    next_id += 1;
                    q.push(next_id, class, depth, version);
                    model.push(ModelEntry {
                        id: next_id,
                        class,
                        depth,
                        version,
                        seq,
                    });
                    seq += 1;
                }
                1 => {
                    let got = q.pop(policy, LaneLoads::default(), false);
                    let want = model_pop(&mut model, policy, LaneLoads::default());
                    assert_eq!(got, want, "case {case}: queue disagrees with model");
                }
                _ => {
                    let v = rng.random_range(0..3u32);
                    let mut got = q.remove_version(v);
                    got.sort_unstable();
                    let mut want: Vec<u64> = model
                        .iter()
                        .filter(|e| e.version == Some(v))
                        .map(|e| e.id)
                        .collect();
                    want.sort_unstable();
                    model.retain(|e| e.version != Some(v));
                    assert_eq!(got, want, "case {case}: remove_version({v}) disagrees");
                }
            }
            assert_eq!(q.len(), model.len(), "case {case}: length drift");
        }
    });
}

/// Scheduler conservation: every spawned task is exactly once either
/// (a) dispatched and completed, (b) deleted by a rollback while
/// ready, or (c) rejected at spawn.
#[test]
fn prop_scheduler_conserves_tasks() {
    cases(0xC0A5E, 64, |rng, case| {
        let mut s = Scheduler::new(DispatchPolicy::Aggressive);
        let mut spawned = 0u64;
        let mut completed = 0u64;
        let n_ops = rng.random_range(1..200usize);
        for _ in 0..n_ops {
            match rng.random_range(0..4u8) {
                0 => {
                    let v = rng.random_range(0..4u32);
                    if s.spawn(TaskSpec::speculative("s", 0, 0, v, 0, |_| payload(())))
                        .is_some()
                    {
                        spawned += 1;
                    }
                }
                1 => {
                    s.spawn(TaskSpec::regular("r", 0, 0, 0, |_| payload(())))
                        .unwrap();
                    spawned += 1;
                }
                2 => {
                    if let Some(d) = s.dispatch() {
                        s.complete(d.id);
                        completed += 1;
                    }
                }
                _ => {
                    s.abort_version(rng.random_range(0..4u32));
                }
            }
        }
        // Drain what remains.
        while let Some(d) = s.dispatch() {
            s.complete(d.id);
            completed += 1;
        }
        let st = s.stats();
        assert_eq!(st.spawned, spawned, "case {case}");
        assert_eq!(completed, st.delivered + st.discarded, "case {case}");
        assert_eq!(spawned, completed + st.deleted_ready, "case {case}");
        assert!(s.is_idle(), "case {case}");
    });
}

// ---------------------------------------------------------------------
// DES determinism under arbitrary fan-out workloads
// ---------------------------------------------------------------------

/// A workload whose shape is driven by a byte script: each completed task
/// spawns `script[tag] % 3` children until the budget is exhausted.
struct FanOut {
    script: Vec<u8>,
    spawned: usize,
    seen: usize,
}

impl FanOut {
    fn child(&mut self, ctx: &mut dyn SchedCtx, tag: u64) {
        if self.spawned >= self.script.len() {
            return;
        }
        self.spawned += 1;
        ctx.spawn(TaskSpec::regular(
            "t",
            (tag % 7) as u32,
            (tag as usize % 5) * 100,
            tag,
            |_| payload(()),
        ));
    }
}

impl Workload for FanOut {
    fn on_start(&mut self, ctx: &mut dyn SchedCtx) {
        self.child(ctx, 1);
    }
    fn on_input(&mut self, _ctx: &mut dyn SchedCtx, _b: InputBlock) {}
    fn on_complete(&mut self, ctx: &mut dyn SchedCtx, done: Completion) {
        self.seen += 1;
        let n = self.script.get(done.tag as usize).copied().unwrap_or(0) % 3;
        for i in 0..n {
            self.child(ctx, done.tag * 3 + i as u64 + 1);
        }
    }
    fn is_finished(&self) -> bool {
        self.seen >= self.spawned && self.spawned > 0
    }
}

struct TagCost;
impl CostModel for TagCost {
    fn cost_us(&self, _name: &str, bytes: usize) -> Time {
        10 + bytes as Time
    }
}

/// Same script, same platform -> byte-identical traces; and the trace
/// respects worker exclusivity (no overlapping tasks on one worker).
#[test]
fn prop_sim_deterministic_and_exclusive() {
    cases(0xDE5, 32, |rng, case| {
        let script = tvs_rng::bytes(rng, 1..100);
        let workers = rng.random_range(1..6usize);
        let cfg = SimConfig {
            platform: x86_smp(workers),
            policy: DispatchPolicy::NonSpeculative,
            trace: true,
        };
        let mk = || FanOut {
            script: script.clone(),
            spawned: 0,
            seen: 0,
        };
        let a = run_sim(mk(), &cfg, &TagCost, vec![]);
        let b = run_sim(mk(), &cfg, &TagCost, vec![]);
        assert_eq!(&a.trace, &b.trace, "case {case}");
        assert_eq!(a.metrics.makespan, b.metrics.makespan, "case {case}");
        // Worker exclusivity.
        for w in 0..workers {
            let mut spans: Vec<(Time, Time)> = a
                .trace
                .iter()
                .filter(|t| t.worker == w)
                .map(|t| (t.start, t.end))
                .collect();
            spans.sort_unstable();
            for pair in spans.windows(2) {
                assert!(
                    pair[1].0 >= pair[0].1,
                    "case {case}: worker {w} overlap: {pair:?}"
                );
            }
        }
        // Conservation: every spawned task traced exactly once.
        assert_eq!(a.trace.len(), a.workload.spawned);
        // The simulator's per-worker binding counts cover every task.
        assert_eq!(
            a.metrics.lane_dispatches.iter().sum::<u64>(),
            a.trace.len() as u64,
            "case {case}"
        );
    });
}

// ---------------------------------------------------------------------
// Cross-executor equivalence: sim == threaded == baseline
// ---------------------------------------------------------------------

/// Deterministic two-stage workload: each input block spawns a "digest"
/// task (sums bytes), whose delivery spawns a "fold" task mixing the digest
/// with the tag. Delivered fold outputs are collected as `(tag, value)`.
struct TwoStage {
    blocks: usize,
    folds_done: usize,
    results: Vec<(u64, u64)>,
}

impl TwoStage {
    fn new(blocks: usize) -> Self {
        TwoStage {
            blocks,
            folds_done: 0,
            results: Vec::new(),
        }
    }
}

impl Workload for TwoStage {
    fn on_input(&mut self, ctx: &mut dyn SchedCtx, b: InputBlock) {
        let data = b.data.clone();
        ctx.spawn(TaskSpec::regular(
            "digest",
            0,
            data.len(),
            b.index as u64,
            move |_| {
                payload(
                    data.iter()
                        .enumerate()
                        .map(|(i, &x)| (i as u64 + 1) * x as u64)
                        .sum::<u64>(),
                )
            },
        ));
    }
    fn on_complete(&mut self, ctx: &mut dyn SchedCtx, done: Completion) {
        match done.name {
            "digest" => {
                let digest = *done.output.downcast::<u64>().unwrap();
                let tag = done.tag;
                ctx.spawn(TaskSpec::regular("fold", 1, 0, tag, move |_| {
                    payload(digest.wrapping_mul(0x9E3779B97F4A7C15) ^ tag)
                }));
            }
            "fold" => {
                self.folds_done += 1;
                self.results
                    .push((done.tag, *done.output.downcast::<u64>().unwrap()));
            }
            _ => unreachable!(),
        }
    }
    fn is_finished(&self) -> bool {
        self.folds_done == self.blocks
    }
}

/// The same deterministic workload must deliver the same output set on the
/// simulator, the work-stealing threaded executor and the single-lock
/// baseline, at every worker count — executors may reorder completions but
/// never change, drop or duplicate results.
#[test]
fn prop_cross_executor_outputs_identical() {
    cases(0xE9_0A11, 8, |rng, case| {
        let n_blocks = rng.random_range(1..40usize);
        let data: Vec<Arc<[u8]>> = (0..n_blocks)
            .map(|_| tvs_rng::bytes(rng, 1..512).into())
            .collect();

        let sorted = |mut v: Vec<(u64, u64)>| {
            v.sort_unstable();
            v
        };

        // Reference: single-worker simulator run.
        let sim_inputs: Vec<InputBlock> = data
            .iter()
            .enumerate()
            .map(|(i, d)| InputBlock {
                index: i,
                arrival: i as Time,
                data: d.clone(),
            })
            .collect();
        let sim_cfg = SimConfig {
            platform: x86_smp(1),
            policy: DispatchPolicy::NonSpeculative,
            trace: false,
        };
        let reference = sorted(
            run_sim(TwoStage::new(n_blocks), &sim_cfg, &TagCost, sim_inputs)
                .workload
                .results,
        );
        assert_eq!(reference.len(), n_blocks);

        for workers in [1usize, 2, 4, 8] {
            // Simulator at this worker count.
            let cfg = SimConfig {
                platform: x86_smp(workers),
                policy: DispatchPolicy::NonSpeculative,
                trace: false,
            };
            let sim_inputs: Vec<InputBlock> = data
                .iter()
                .enumerate()
                .map(|(i, d)| InputBlock {
                    index: i,
                    arrival: i as Time,
                    data: d.clone(),
                })
                .collect();
            let got = sorted(
                run_sim(TwoStage::new(n_blocks), &cfg, &TagCost, sim_inputs)
                    .workload
                    .results,
            );
            assert_eq!(got, reference, "case {case}: sim@{workers} diverged");

            // Threaded (work-stealing) and baseline executors.
            let tcfg = ThreadedConfig::new(workers, DispatchPolicy::NonSpeculative);
            let blocks: Vec<(usize, Arc<[u8]>)> = data.iter().cloned().enumerate().collect();
            let (w, m) = run_threaded(TwoStage::new(n_blocks), &tcfg, blocks.clone());
            assert_eq!(
                sorted(w.results),
                reference,
                "case {case}: threaded@{workers} diverged"
            );
            assert_eq!(m.tasks_delivered, 2 * n_blocks as u64);
            assert_eq!(
                m.lane_dispatches.iter().sum::<u64>(),
                2 * n_blocks as u64,
                "case {case}: every threaded task routes through a lane"
            );

            let (w, m) = run_baseline(TwoStage::new(n_blocks), &tcfg, blocks);
            assert_eq!(
                sorted(w.results),
                reference,
                "case {case}: baseline@{workers} diverged"
            );
            assert_eq!(m.tasks_delivered, 2 * n_blocks as u64);
        }
    });
}

/// Chained speculation on real threads: delivered results must be immune to
/// executor races — an aborted version's outputs never surface, whatever
/// the interleaving. Runs the same speculative workload many times across
/// worker counts.
#[test]
fn prop_threaded_abort_never_leaks() {
    struct SpecLeak {
        normal_done: bool,
        leaked: bool,
    }
    impl Workload for SpecLeak {
        fn on_start(&mut self, ctx: &mut dyn SchedCtx) {
            for i in 0..4 {
                ctx.spawn(TaskSpec::speculative("spec", 0, 0, 1, i, |_| payload(())));
            }
            ctx.spawn(TaskSpec::regular("normal", 0, 0, 0, |_| payload(())));
        }
        fn on_input(&mut self, _: &mut dyn SchedCtx, _: InputBlock) {}
        fn on_complete(&mut self, ctx: &mut dyn SchedCtx, done: Completion) {
            match done.name {
                "normal" => {
                    ctx.abort_version(1);
                    self.normal_done = true;
                }
                "spec" => {
                    if self.normal_done {
                        // Delivered after its version was aborted: a leak.
                        self.leaked = true;
                    }
                }
                _ => unreachable!(),
            }
        }
        fn is_finished(&self) -> bool {
            self.normal_done
        }
    }
    for workers in [1usize, 2, 4] {
        for _ in 0..8 {
            let cfg = ThreadedConfig::new(workers, DispatchPolicy::Balanced);
            let (w, m) = run_threaded(
                SpecLeak {
                    normal_done: false,
                    leaked: false,
                },
                &cfg,
                Vec::<(usize, Arc<[u8]>)>::new(),
            );
            assert!(w.normal_done);
            assert!(
                !w.leaked,
                "aborted speculative output delivered at {workers} workers"
            );
            // Conservation: 1 normal delivered; every spec accounted for as
            // early-delivered, discarded or deleted (queue or lane).
            let spec_delivered = m.tasks_delivered - 1;
            assert_eq!(
                spec_delivered + m.tasks_discarded + m.tasks_deleted_ready,
                4,
                "spec tasks unaccounted for at {workers} workers"
            );
        }
    }
}
