//! Tolerant value speculation for coarse-grain streaming computations.
//!
//! This crate is the reproduction's *primary contribution*: the runtime
//! support for **speculating on data-flow edge values with a programmer-
//! defined tolerance**, per Azuelos, Keidar & Zaks (IPPS 2011).
//!
//! The paper's programmer interface asks for four things (§II-A):
//!
//! 1. **what** to speculate — which DFG edge's value to guess;
//! 2. **how** — the source providing approximate data (typically an early
//!    or partial stage of the computation);
//! 3. **where (not)** — the side-effect boundary at which speculative data
//!    must wait for validation;
//! 4. **how to validate** — a comparison with a tolerance margin that
//!    decides commit or rollback.
//!
//! The pieces here map onto that interface:
//!
//! * [`interface::SpeculationBuilder`] — the four-point configuration;
//! * [`frequency`] — *when* to speculate (step size) and *when* to verify
//!   (the paper's baseline every-k / optimistic / full policies);
//! * [`version`] — speculation version lifecycle (active → committed /
//!   aborted);
//! * [`buffer::WaitBuffer`] — the paper's Wait task: speculative outputs
//!   heading into side-effecting sinks are buffered until their version's
//!   fate is decided;
//! * [`validate`] — tolerance checks as first-class values;
//! * [`manager::SpeculationManager`] — the state machine that turns basis
//!   progress and check verdicts into actions (predict / check / rollback /
//!   commit / recompute), which a workload executes through the SRE's
//!   scheduler, plus user-defined rollback hooks;
//! * [`undo`] — the extension the paper proposes for tasks with reversible
//!   side effects: per-version undo journals and journalled cells, driven
//!   from the manager's rollback hook;
//! * [`breaker`] — graceful degradation: a circuit breaker over the
//!   windowed rollback/commit ratio and executor fault rate that trips
//!   speculation back to conservative dispatch and probes for recovery;
//! * [`arena`] — generation-indexed slot/buffer recycling that keeps the
//!   per-block speculation bookkeeping off the heap in steady state;
//! * [`ladder`] — the degradation ladder above the breaker: an escalating
//!   controller (full → capped depth → non-speculative → checkpoint-and-
//!   pause) with hysteresis in both directions;
//! * [`checkpoint`] — committed-prefix snapshots: the finalized block
//!   prefix, merged histogram, code table and encoder bit-IO carry,
//!   written atomically so a killed run resumes byte-identically.
//!
//! The mechanisms these actions rely on (version-tagged tasks, abort flags,
//! control-class priorities) live in the substrate crate `tvs-sre`.
//!
//! ```
//! use tvs_core::{
//!     Action, CheckResult, SpeculationManager, SpeculationSchedule, VerificationPolicy,
//! };
//!
//! // Speculate from the first basis event, verify at every one.
//! let mut mgr: SpeculationManager<&str> =
//!     SpeculationManager::new(SpeculationSchedule::with_step(1), VerificationPolicy::Full);
//!
//! assert_eq!(mgr.on_basis(1), vec![Action::StartPrediction { version: 1 }]);
//! assert!(mgr.install_prediction(1, "guessed value"));
//!
//! // A later check finds the guess within tolerance...
//! assert_eq!(mgr.on_basis(2), vec![Action::SpawnCheck { version: 1 }]);
//! assert!(mgr.on_check_result(1, CheckResult::pass(0.002), None).is_empty());
//!
//! // ...and the final comparison commits it.
//! assert_eq!(mgr.on_final(), vec![Action::SpawnFinalCheck { version: 1 }]);
//! assert_eq!(
//!     mgr.on_final_check_result(1, CheckResult::pass(0.004)),
//!     vec![Action::Commit { version: 1 }],
//! );
//! assert_eq!(mgr.committed(), Some(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod breaker;
pub mod buffer;
pub mod checkpoint;
pub mod frequency;
pub mod interface;
pub mod ladder;
pub mod manager;
pub mod undo;
pub mod validate;
pub mod version;

pub use arena::{AllocStats, Arena, Handle, ScratchPool};
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use buffer::WaitBuffer;
pub use checkpoint::{CheckpointConfig, ResumeError, StreamSnapshot};
pub use frequency::{SpeculationSchedule, VerificationPolicy};
pub use interface::{SpeculationBuilder, SpeculationPlan};
pub use ladder::{DegradationLadder, DegradationLevel, LadderConfig};
pub use manager::{Action, ManagerStats, SpeculationManager};
pub use undo::{JournaledCell, UndoLog};
pub use validate::{CheckResult, Tolerance};
pub use version::{VersionState, VersionTracker};

/// Re-export: versions are the SRE's tags.
pub use tvs_sre::SpecVersion;

/// Re-exports: the replication validation plane lives in the substrate
/// crate (it wraps any `Workload`), but it is speculation *policy* —
/// surfaced here next to the breaker and manager that consume its
/// verdicts.
pub use tvs_sre::{DigestFn, ReplicaStats, ReplicatingWorkload, SdcNotice, ValidationMode};
