//! The speculation state machine.
//!
//! [`SpeculationManager`] is the piece that turns the paper's prose into
//! mechanism: it watches basis progress (completions of the speculation
//! source), decides when to predict and when to verify, digests check
//! verdicts, and emits [`Action`]s that the hosting workload executes
//! through the SRE scheduler (spawn a predictor, spawn a check, roll a
//! version back, commit, or fall back to the natural path).
//!
//! The manager is domain-agnostic: it holds the speculated value as an
//! opaque `T` and never inspects it. Domain logic (how to predict, how to
//! compare within tolerance) runs inside the predictor and check *tasks*;
//! their outcomes are fed back in.

use crate::frequency::{SpeculationSchedule, VerificationPolicy};
use crate::validate::CheckResult;
use crate::version::{VersionState, VersionTracker};
use tvs_sre::SpecVersion;
use tvs_trace::{EventKind, Tracer};

/// What the hosting workload must do next.
#[derive(Debug, PartialEq, Eq)]
pub enum Action {
    /// Spawn a predictor task that builds a speculative value (from the
    /// current basis snapshot) and reports it via
    /// [`SpeculationManager::install_prediction`].
    StartPrediction {
        /// The version the prediction will carry.
        version: SpecVersion,
    },
    /// Spawn a check task comparing the active speculative value against a
    /// value built from the current basis snapshot; report via
    /// [`SpeculationManager::on_check_result`].
    SpawnCheck {
        /// The version under test.
        version: SpecVersion,
    },
    /// Roll back: abort the version in the scheduler, discard its wait
    /// buffers and any derived state.
    Rollback {
        /// The aborted version.
        version: SpecVersion,
    },
    /// A failed check's freshly-built candidate value was installed as the
    /// new active speculation ("a negative comparison generates a new
    /// filtering task that uses the new coefficients"); start speculative
    /// processing under this version.
    PromoteCandidate {
        /// The new active version.
        version: SpecVersion,
    },
    /// The final value is known and a speculation is active: spawn the
    /// decisive check; report via
    /// [`SpeculationManager::on_final_check_result`].
    SpawnFinalCheck {
        /// The version under final test.
        version: SpecVersion,
    },
    /// The speculation was validated against the final value: release the
    /// wait buffers ("commit the buffered data").
    Commit {
        /// The committed version.
        version: SpecVersion,
    },
    /// No valid speculation survives; execute the natural
    /// (non-speculative) path.
    RecomputeNaturally,
}

/// Aggregate speculation statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Predictor tasks requested.
    pub predictions: u64,
    /// Intermediate checks requested.
    pub checks: u64,
    /// Intermediate checks that passed.
    pub checks_passed: u64,
    /// Intermediate checks that failed (each causes a rollback).
    pub checks_failed: u64,
    /// Rollbacks (intermediate + final).
    pub rollbacks: u64,
    /// Stale verdicts ignored (their version was already gone).
    pub stale_results: u64,
}

#[derive(Debug)]
enum Phase<T> {
    /// No speculation in flight.
    Idle { restart: bool },
    /// Predictor task outstanding.
    Pending { version: SpecVersion },
    /// Speculative value installed and driving speculative tasks.
    Active {
        version: SpecVersion,
        value: T,
        installed_at: u64,
    },
    /// Final check outstanding.
    FinalChecking { version: SpecVersion, value: T },
    /// Committed or recomputing; no further speculation.
    Done { committed: Option<SpecVersion> },
}

/// The speculation engine for one speculated DFG edge.
pub struct SpeculationManager<T> {
    schedule: SpeculationSchedule,
    verify: VerificationPolicy,
    tracker: VersionTracker,
    phase: Phase<T>,
    last_basis: u64,
    final_seen: bool,
    stats: ManagerStats,
    rollback_hook: Option<Box<dyn FnMut(SpecVersion) + Send>>,
    tracer: Tracer,
}

impl<T> std::fmt::Debug for SpeculationManager<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpeculationManager")
            .field("schedule", &self.schedule)
            .field("verify", &self.verify)
            .field("last_basis", &self.last_basis)
            .field("stats", &self.stats)
            .finish()
    }
}

impl<T> SpeculationManager<T> {
    /// A manager with the given speculation and verification frequencies.
    pub fn new(schedule: SpeculationSchedule, verify: VerificationPolicy) -> Self {
        SpeculationManager {
            schedule,
            verify,
            tracker: VersionTracker::new(),
            phase: Phase::Idle { restart: false },
            last_basis: 0,
            final_seen: false,
            stats: ManagerStats::default(),
            rollback_hook: None,
            tracer: Tracer::disabled(),
        }
    }

    /// Route speculation-lifecycle events (predictor fires, version opens,
    /// check verdicts, commits) into `tracer`'s control ring. The manager
    /// always runs under its host's routing lock, so the ring stays
    /// single-writer. Rollback events are *not* emitted here — the SRE
    /// scheduler emits them when the host executes [`Action::Rollback`],
    /// with the observed cascade depth attached.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Register a user-defined rollback routine, invoked with each aborted
    /// version — the extension the paper proposes "to enable more tasks to
    /// execute speculatively" (tasks with application-reversible effects).
    pub fn set_rollback_hook(&mut self, hook: impl FnMut(SpecVersion) + Send + 'static) {
        self.rollback_hook = Some(Box::new(hook));
    }

    /// The currently active speculative value, if any.
    pub fn active(&self) -> Option<(SpecVersion, &T)> {
        match &self.phase {
            Phase::Active { version, value, .. } => Some((*version, value)),
            _ => None,
        }
    }

    /// The value under final validation, if the manager is between
    /// [`Self::on_final`] and [`Self::on_final_check_result`].
    pub fn pending_final(&self) -> Option<(SpecVersion, &T)> {
        match &self.phase {
            Phase::FinalChecking { version, value } => Some((*version, value)),
            _ => None,
        }
    }

    /// The committed version, once decided.
    pub fn committed(&self) -> Option<SpecVersion> {
        match self.phase {
            Phase::Done { committed } => committed,
            _ => None,
        }
    }

    /// Whether the manager reached its terminal phase.
    pub fn is_done(&self) -> bool {
        matches!(self.phase, Phase::Done { .. })
    }

    /// Statistics so far.
    pub fn stats(&self) -> ManagerStats {
        self.stats
    }

    /// Version lifecycle introspection.
    pub fn version_state(&self, v: SpecVersion) -> Option<VersionState> {
        self.tracker.state(v)
    }

    fn emit_rollback(&mut self, version: SpecVersion, out: &mut Vec<Action>) {
        self.tracker.abort(version);
        self.stats.rollbacks += 1;
        if let Some(hook) = &mut self.rollback_hook {
            hook(version);
        }
        out.push(Action::Rollback { version });
    }

    /// A basis event completed (the `basis`-th, 1-based). Returns the
    /// actions to take.
    pub fn on_basis(&mut self, basis: u64) -> Vec<Action> {
        assert!(!self.final_seen, "basis events after the final value");
        assert!(basis >= self.last_basis, "basis events must be monotone");
        self.last_basis = basis;
        let mut out = Vec::new();
        match &self.phase {
            Phase::Idle { restart } => {
                if self.schedule.should_start(basis, *restart) {
                    let version = self.tracker.allocate(basis);
                    self.phase = Phase::Pending { version };
                    self.stats.predictions += 1;
                    self.tracer
                        .emit_control(EventKind::PredictorFire { version, basis });
                    out.push(Action::StartPrediction { version });
                }
            }
            Phase::Active {
                version,
                installed_at,
                ..
            } => {
                if self.verify.should_check(basis, *installed_at) {
                    self.stats.checks += 1;
                    out.push(Action::SpawnCheck { version: *version });
                }
            }
            Phase::Pending { .. } | Phase::FinalChecking { .. } | Phase::Done { .. } => {}
        }
        out
    }

    /// A predictor task delivered its value. Returns `false` when the
    /// version lost a race against rollback and the value was dropped.
    pub fn install_prediction(&mut self, version: SpecVersion, value: T) -> bool {
        match &self.phase {
            Phase::Pending { version: v } if *v == version => {
                if !self.tracker.activate(version) {
                    self.stats.stale_results += 1;
                    return false;
                }
                let installed_at = self.tracker.basis_of(version).expect("allocated");
                self.tracer.emit_control(EventKind::VersionOpen {
                    version,
                    basis: installed_at,
                });
                self.phase = Phase::Active {
                    version,
                    value,
                    installed_at,
                };
                true
            }
            _ => {
                self.stats.stale_results += 1;
                false
            }
        }
    }

    /// An intermediate check task reported. `candidate` is the fresh value
    /// the check built from basis event `candidate_basis` (promoted on
    /// failure; dropped on success).
    pub fn on_check_result(
        &mut self,
        version: SpecVersion,
        result: CheckResult,
        candidate: Option<(T, u64)>,
    ) -> Vec<Action> {
        let mut out = Vec::new();
        let is_current_active =
            matches!(&self.phase, Phase::Active { version: v, .. } if *v == version);
        if !is_current_active {
            self.stats.stale_results += 1;
            return out;
        }
        if result.valid {
            self.stats.checks_passed += 1;
            self.tracer.emit_control(EventKind::CheckPass {
                version,
                margin: result.delta,
            });
            return out;
        }
        self.stats.checks_failed += 1;
        self.tracer.emit_control(EventKind::CheckFail {
            version,
            margin: result.delta,
        });
        self.emit_rollback(version, &mut out);
        match candidate {
            Some((value, candidate_basis)) => {
                let v2 = self.tracker.allocate(candidate_basis);
                assert!(self.tracker.activate(v2), "fresh version cannot be aborted");
                self.stats.predictions += 1;
                self.tracer.emit_control(EventKind::VersionOpen {
                    version: v2,
                    basis: candidate_basis,
                });
                self.phase = Phase::Active {
                    version: v2,
                    value,
                    installed_at: candidate_basis,
                };
                out.push(Action::PromoteCandidate { version: v2 });
            }
            None => {
                self.phase = Phase::Idle { restart: true };
            }
        }
        out
    }

    /// The true final value became available. Returns either the final
    /// check to spawn or the decision to recompute naturally.
    pub fn on_final(&mut self) -> Vec<Action> {
        assert!(!self.final_seen, "on_final called twice");
        self.final_seen = true;
        let mut out = Vec::new();
        match std::mem::replace(&mut self.phase, Phase::Done { committed: None }) {
            Phase::Active { version, value, .. } => {
                self.phase = Phase::FinalChecking { version, value };
                out.push(Action::SpawnFinalCheck { version });
            }
            Phase::Pending { version } => {
                // The predictor never finished: kill it and go natural.
                self.emit_rollback(version, &mut out);
                out.push(Action::RecomputeNaturally);
            }
            Phase::Idle { .. } => {
                out.push(Action::RecomputeNaturally);
            }
            Phase::FinalChecking { .. } | Phase::Done { .. } => {
                unreachable!("final value delivered in a terminal phase")
            }
        }
        out
    }

    /// The final check reported: commit or recompute.
    pub fn on_final_check_result(
        &mut self,
        version: SpecVersion,
        result: CheckResult,
    ) -> Vec<Action> {
        let mut out = Vec::new();
        match std::mem::replace(&mut self.phase, Phase::Done { committed: None }) {
            Phase::FinalChecking { version: v, .. } if v == version => {
                if result.valid {
                    self.tracker.commit(version);
                    self.tracer.emit_control(EventKind::CheckPass {
                        version,
                        margin: result.delta,
                    });
                    self.tracer.emit_control(EventKind::Commit { version });
                    self.phase = Phase::Done {
                        committed: Some(version),
                    };
                    out.push(Action::Commit { version });
                } else {
                    self.stats.checks_failed += 1;
                    self.tracer.emit_control(EventKind::CheckFail {
                        version,
                        margin: result.delta,
                    });
                    self.emit_rollback(version, &mut out);
                    out.push(Action::RecomputeNaturally);
                }
            }
            other => {
                self.phase = other;
                self.stats.stale_results += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::CheckResult;

    fn mgr(step: u64, verify: VerificationPolicy) -> SpeculationManager<&'static str> {
        SpeculationManager::new(SpeculationSchedule::with_step(step), verify)
    }

    #[test]
    fn no_rollback_happy_path() {
        let mut m = mgr(1, VerificationPolicy::EveryKth(2));
        // Basis 1: start prediction.
        let a = m.on_basis(1);
        assert_eq!(a, vec![Action::StartPrediction { version: 1 }]);
        assert!(m.install_prediction(1, "tree-v1"));
        assert_eq!(m.active(), Some((1, &"tree-v1")));
        // Basis 2: check due (every 2nd).
        assert_eq!(m.on_basis(2), vec![Action::SpawnCheck { version: 1 }]);
        assert!(m
            .on_check_result(1, CheckResult::pass(0.001), None)
            .is_empty());
        // Basis 3: no check (odd).
        assert!(m.on_basis(3).is_empty());
        // Final: decisive check, then commit.
        assert_eq!(m.on_final(), vec![Action::SpawnFinalCheck { version: 1 }]);
        assert_eq!(m.pending_final(), Some((1, &"tree-v1")));
        assert_eq!(
            m.on_final_check_result(1, CheckResult::pass(0.004)),
            vec![Action::Commit { version: 1 }]
        );
        assert_eq!(m.committed(), Some(1));
        assert!(m.is_done());
        let s = m.stats();
        assert_eq!(s.predictions, 1);
        assert_eq!(s.rollbacks, 0);
    }

    #[test]
    fn failed_check_promotes_candidate() {
        let mut m = mgr(1, VerificationPolicy::Full);
        m.on_basis(1);
        m.install_prediction(1, "v1");
        assert_eq!(m.on_basis(2), vec![Action::SpawnCheck { version: 1 }]);
        let acts = m.on_check_result(1, CheckResult::fail(0.09), Some(("v2", 2)));
        assert_eq!(
            acts,
            vec![
                Action::Rollback { version: 1 },
                Action::PromoteCandidate { version: 2 }
            ]
        );
        assert_eq!(m.active(), Some((2, &"v2")));
        assert_eq!(m.version_state(1), Some(VersionState::Aborted));
        assert_eq!(m.stats().rollbacks, 1);
        // The promoted version commits at final.
        m.on_final();
        let acts = m.on_final_check_result(2, CheckResult::pass(0.0));
        assert_eq!(acts, vec![Action::Commit { version: 2 }]);
    }

    #[test]
    fn failed_check_without_candidate_restarts_on_next_basis() {
        let mut m = mgr(100, VerificationPolicy::Full);
        // step=100 would normally delay the start...
        assert!(m.on_basis(99).is_empty());
        let a = m.on_basis(100);
        assert_eq!(a, vec![Action::StartPrediction { version: 1 }]);
        m.install_prediction(1, "v1");
        m.on_basis(101);
        let acts = m.on_check_result(1, CheckResult::fail(1.0), None);
        assert_eq!(acts, vec![Action::Rollback { version: 1 }]);
        // ...but a restart ignores the step.
        let a = m.on_basis(102);
        assert_eq!(a, vec![Action::StartPrediction { version: 2 }]);
    }

    #[test]
    fn failed_final_check_recomputes() {
        let mut m = mgr(0, VerificationPolicy::Optimistic);
        m.on_basis(1);
        m.install_prediction(1, "v1");
        // Optimistic: no intermediate checks ever.
        for b in 2..50 {
            assert!(m.on_basis(b).is_empty());
        }
        assert_eq!(m.on_final(), vec![Action::SpawnFinalCheck { version: 1 }]);
        let acts = m.on_final_check_result(1, CheckResult::fail(0.3));
        assert_eq!(
            acts,
            vec![Action::Rollback { version: 1 }, Action::RecomputeNaturally]
        );
        assert_eq!(m.committed(), None);
        assert!(m.is_done());
    }

    #[test]
    fn final_with_pending_prediction_recomputes() {
        let mut m = mgr(1, VerificationPolicy::baseline());
        m.on_basis(1);
        let acts = m.on_final();
        assert_eq!(
            acts,
            vec![Action::Rollback { version: 1 }, Action::RecomputeNaturally]
        );
        // The late prediction is dropped.
        assert!(!m.install_prediction(1, "late"));
        assert_eq!(m.stats().stale_results, 1);
    }

    #[test]
    fn final_without_any_speculation_recomputes() {
        let mut m = mgr(1000, VerificationPolicy::baseline());
        m.on_basis(1);
        m.on_basis(2);
        assert_eq!(m.on_final(), vec![Action::RecomputeNaturally]);
    }

    #[test]
    fn stale_check_results_ignored() {
        let mut m = mgr(1, VerificationPolicy::Full);
        m.on_basis(1);
        m.install_prediction(1, "v1");
        m.on_basis(2);
        // Two checks in flight: first fails, promoting v2; the second
        // (also against v1) arrives stale and must be ignored.
        m.on_check_result(1, CheckResult::fail(0.2), Some(("v2", 2)));
        let acts = m.on_check_result(1, CheckResult::fail(0.2), Some(("v3", 2)));
        assert!(acts.is_empty());
        assert_eq!(m.stats().stale_results, 1);
        assert_eq!(m.active().unwrap().0, 2);
    }

    #[test]
    fn lifecycle_events_reach_the_tracer() {
        let tracer = Tracer::enabled(1);
        let mut m = mgr(1, VerificationPolicy::Full);
        m.set_tracer(tracer.clone());
        m.on_basis(1);
        m.install_prediction(1, "v1");
        m.on_basis(2);
        // Failed check with a candidate: fail + reopen under v2.
        m.on_check_result(1, CheckResult::fail(0.09), Some(("v2", 2)));
        m.on_basis(3);
        m.on_check_result(2, CheckResult::pass(0.01), None);
        m.on_final();
        m.on_final_check_result(2, CheckResult::pass(0.002));
        let log = tracer.drain().expect("enabled tracer drains");
        assert_eq!(log.count("predictor-fire"), 1);
        assert_eq!(log.count("version-open"), 2, "install + promote");
        assert_eq!(log.count("check-pass"), 2, "intermediate + final");
        assert_eq!(log.count("check-fail"), 1);
        assert_eq!(log.count("commit"), 1);
        assert_eq!(
            log.count("rollback"),
            0,
            "rollback events belong to the scheduler, not the manager"
        );
    }

    #[test]
    fn rollback_hook_fires() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;
        let seen = Arc::new(AtomicU32::new(0));
        let seen2 = Arc::clone(&seen);
        let mut m = mgr(1, VerificationPolicy::Full);
        m.set_rollback_hook(move |v| {
            seen2.store(v, Ordering::SeqCst);
        });
        m.on_basis(1);
        m.install_prediction(1, "v1");
        m.on_basis(2);
        m.on_check_result(1, CheckResult::fail(0.5), None);
        assert_eq!(seen.load(Ordering::SeqCst), 1);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn non_monotone_basis_panics() {
        let mut m = mgr(1, VerificationPolicy::Full);
        m.on_basis(5);
        m.on_basis(4);
    }

    #[test]
    #[should_panic(expected = "on_final called twice")]
    fn double_final_panics() {
        let mut m = mgr(1000, VerificationPolicy::Full);
        m.on_final();
        m.on_final();
    }

    #[test]
    fn check_counts_accumulate() {
        let mut m = mgr(1, VerificationPolicy::Full);
        m.on_basis(1);
        m.install_prediction(1, "v");
        for b in 2..=5 {
            m.on_basis(b);
            m.on_check_result(1, CheckResult::pass(0.0), None);
        }
        let s = m.stats();
        assert_eq!(s.checks, 4);
        assert_eq!(s.checks_passed, 4);
        assert_eq!(s.checks_failed, 0);
    }
}
