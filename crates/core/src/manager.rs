//! The speculation state machine.
//!
//! [`SpeculationManager`] is the piece that turns the paper's prose into
//! mechanism: it watches basis progress (completions of the speculation
//! source), decides when to predict and when to verify, digests check
//! verdicts, and emits [`Action`]s that the hosting workload executes
//! through the SRE scheduler (spawn a predictor, spawn a check, roll a
//! version back, commit, or fall back to the natural path).
//!
//! The manager is domain-agnostic: it holds the speculated value as an
//! opaque `T` and never inspects it. Domain logic (how to predict, how to
//! compare within tolerance) runs inside the predictor and check *tasks*;
//! their outcomes are fed back in.

use crate::breaker::{BreakerConfig, BreakerState, BreakerTransition, CircuitBreaker};
use crate::frequency::{SpeculationSchedule, VerificationPolicy};
use crate::ladder::{DegradationLadder, DegradationLevel, LadderConfig};
use crate::validate::CheckResult;
use crate::version::{VersionState, VersionTracker};
use tvs_metrics::{Counter, Gauge, MetricsHub};
use tvs_sre::SpecVersion;
use tvs_trace::{EventKind, Tracer};

/// What the hosting workload must do next.
#[derive(Debug, PartialEq, Eq)]
pub enum Action {
    /// Spawn a predictor task that builds a speculative value (from the
    /// current basis snapshot) and reports it via
    /// [`SpeculationManager::install_prediction`].
    StartPrediction {
        /// The version the prediction will carry.
        version: SpecVersion,
    },
    /// Spawn a check task comparing the active speculative value against a
    /// value built from the current basis snapshot; report via
    /// [`SpeculationManager::on_check_result`].
    SpawnCheck {
        /// The version under test.
        version: SpecVersion,
    },
    /// Roll back: abort the version in the scheduler, discard its wait
    /// buffers and any derived state.
    Rollback {
        /// The aborted version.
        version: SpecVersion,
    },
    /// A failed check's freshly-built candidate value was installed as the
    /// new active speculation ("a negative comparison generates a new
    /// filtering task that uses the new coefficients"); start speculative
    /// processing under this version.
    PromoteCandidate {
        /// The new active version.
        version: SpecVersion,
    },
    /// The final value is known and a speculation is active: spawn the
    /// decisive check; report via
    /// [`SpeculationManager::on_final_check_result`].
    SpawnFinalCheck {
        /// The version under final test.
        version: SpecVersion,
    },
    /// The speculation was validated against the final value: release the
    /// wait buffers ("commit the buffered data").
    Commit {
        /// The committed version.
        version: SpecVersion,
    },
    /// No valid speculation survives; execute the natural
    /// (non-speculative) path.
    RecomputeNaturally,
}

/// Aggregate speculation statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Predictor tasks requested.
    pub predictions: u64,
    /// Intermediate checks requested.
    pub checks: u64,
    /// Intermediate checks that passed.
    pub checks_passed: u64,
    /// Intermediate checks that failed (each causes a rollback).
    pub checks_failed: u64,
    /// Rollbacks (intermediate + final).
    pub rollbacks: u64,
    /// Stale verdicts ignored (their version was already gone).
    pub stale_results: u64,
    /// Executor-initiated aborts absorbed via
    /// [`SpeculationManager::on_external_abort`] (panicked or
    /// watchdog-cancelled speculative tasks).
    pub external_aborts: u64,
    /// Executor faults reported via [`SpeculationManager::record_fault`].
    pub faults: u64,
    /// Circuit-breaker trips (speculation suspended).
    pub breaker_trips: u64,
    /// Degradation-ladder level transitions (either direction), if a
    /// ladder is configured via [`SpeculationManager::set_ladder`].
    pub ladder_steps: u64,
    /// Replica vote sets that resolved clean, reported via
    /// [`SpeculationManager::on_replica_result`].
    pub replica_checks: u64,
    /// Silent-data-corruption detections (divergent replica digests)
    /// reported via [`SpeculationManager::on_replica_result`].
    pub sdc_detected: u64,
}

#[derive(Debug)]
enum Phase<T> {
    /// No speculation in flight.
    Idle { restart: bool },
    /// Predictor task outstanding.
    Pending { version: SpecVersion },
    /// Speculative value installed and driving speculative tasks.
    Active {
        version: SpecVersion,
        value: T,
        installed_at: u64,
    },
    /// Final check outstanding.
    FinalChecking { version: SpecVersion, value: T },
    /// Committed or recomputing; no further speculation.
    Done { committed: Option<SpecVersion> },
}

/// The speculation engine for one speculated DFG edge.
pub struct SpeculationManager<T> {
    schedule: SpeculationSchedule,
    verify: VerificationPolicy,
    tracker: VersionTracker,
    phase: Phase<T>,
    last_basis: u64,
    final_seen: bool,
    stats: ManagerStats,
    rollback_hook: Option<Box<dyn FnMut(SpecVersion) + Send>>,
    tracer: Tracer,
    metrics: MetricsHub,
    breaker: Option<CircuitBreaker>,
    ladder: Option<DegradationLadder>,
    /// `(root, depth)` per allocated version, indexed by `version - 1`
    /// (versions are dense from 1). Lets a candidate promotion inherit
    /// its parent's root and extend its depth in O(1).
    lineage: Vec<(SpecVersion, u32)>,
    lineage_roots: u64,
}

impl<T> std::fmt::Debug for SpeculationManager<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpeculationManager")
            .field("schedule", &self.schedule)
            .field("verify", &self.verify)
            .field("last_basis", &self.last_basis)
            .field("stats", &self.stats)
            .finish()
    }
}

impl<T> SpeculationManager<T> {
    /// A manager with the given speculation and verification frequencies.
    pub fn new(schedule: SpeculationSchedule, verify: VerificationPolicy) -> Self {
        SpeculationManager {
            schedule,
            verify,
            tracker: VersionTracker::new(),
            phase: Phase::Idle { restart: false },
            last_basis: 0,
            final_seen: false,
            stats: ManagerStats::default(),
            rollback_hook: None,
            tracer: Tracer::disabled(),
            metrics: MetricsHub::disabled(),
            breaker: None,
            ladder: None,
            lineage: Vec::new(),
            lineage_roots: 0,
        }
    }

    /// Enable the speculation circuit breaker: sustained rollbacks or
    /// executor faults trip it, suppressing new predictions (conservative
    /// dispatch) until a cooldown and a successful probe. Trip, probe and
    /// recover events flow to the tracer's control ring.
    pub fn set_breaker(&mut self, cfg: BreakerConfig) {
        self.breaker = Some(CircuitBreaker::new(cfg));
        self.publish_breaker_gauge();
    }

    /// The breaker's state, if one is configured.
    pub fn breaker_state(&self) -> Option<BreakerState> {
        self.breaker.as_ref().map(CircuitBreaker::state)
    }

    /// Enable the degradation ladder above the breaker: windows of bad
    /// speculation outcomes (and breaker trips, immediately) step the
    /// service level down one rung at a time — full speculation, capped
    /// cascade depth, non-speculative, checkpoint-and-pause — and
    /// sustained clean windows step it back up with hysteresis. Level
    /// transitions flow to the control ring as
    /// [`EventKind::LadderStep`] and mirror into
    /// [`Gauge::DegradationLevel`].
    pub fn set_ladder(&mut self, cfg: LadderConfig) {
        self.ladder = Some(DegradationLadder::new(cfg));
        self.publish_ladder_gauge();
    }

    /// The ladder's current service level, if one is configured.
    pub fn ladder_level(&self) -> Option<DegradationLevel> {
        self.ladder.as_ref().map(DegradationLadder::level)
    }

    /// Route speculation-lifecycle events (predictor fires, version opens,
    /// check verdicts, commits) into `tracer`'s control ring. The manager
    /// always runs under its host's routing lock, so the ring stays
    /// single-writer. Rollback events are *not* emitted here — the SRE
    /// scheduler emits them when the host executes [`Action::Rollback`],
    /// with the observed cascade depth attached.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Route speculation-outcome counters (predictions, check verdicts,
    /// commits) and the breaker-state gauge into `metrics`. The manager
    /// always runs under its host's routing/commit lock, so counters go to
    /// the hub's control shard — no lane attribution, no contention.
    /// Rollback counters are *not* fed here — the SRE scheduler owns them
    /// (one increment per `abort_version`, with cascade depth attached).
    pub fn set_metrics(&mut self, metrics: MetricsHub) {
        self.metrics = metrics;
        self.publish_breaker_gauge();
        self.publish_ladder_gauge();
    }

    /// Mirror the breaker's state into [`Gauge::BreakerState`]:
    /// 0 = no breaker, 1 = closed, 2 = open, 3 = half-open.
    fn publish_breaker_gauge(&self) {
        if !self.metrics.is_live() {
            return;
        }
        let v = match self.breaker.as_ref().map(CircuitBreaker::state) {
            None => 0,
            Some(BreakerState::Closed) => 1,
            Some(BreakerState::Open) => 2,
            Some(BreakerState::HalfOpen) => 3,
        };
        self.metrics.gauge_set(Gauge::BreakerState, v);
    }

    /// Mirror the ladder's level into [`Gauge::DegradationLevel`]
    /// (0 = full … 3 = checkpoint-and-pause; 0 also when no ladder).
    fn publish_ladder_gauge(&self) {
        if !self.metrics.is_live() {
            return;
        }
        let v = self
            .ladder
            .as_ref()
            .map_or(0, |l| u64::from(l.level().as_u32()));
        self.metrics.gauge_set(Gauge::DegradationLevel, v);
    }

    /// Feed one speculation outcome into the ladder (and, when the
    /// breaker just tripped, the immediate step-down), emitting
    /// [`EventKind::LadderStep`] for each transition taken.
    fn note_ladder(&mut self, ok: bool, breaker_tripped: bool) {
        let Some(l) = &mut self.ladder else { return };
        let mut steps = [None, None];
        steps[0] = l.observe(ok);
        if breaker_tripped {
            steps[1] = l.on_breaker_trip();
        }
        for (from, to) in steps.into_iter().flatten() {
            self.stats.ladder_steps += 1;
            self.tracer.emit_control(EventKind::LadderStep {
                from: from.as_u32(),
                to: to.as_u32(),
            });
        }
        self.publish_ladder_gauge();
    }

    /// Register a user-defined rollback routine, invoked with each aborted
    /// version — the extension the paper proposes "to enable more tasks to
    /// execute speculatively" (tasks with application-reversible effects).
    pub fn set_rollback_hook(&mut self, hook: impl FnMut(SpecVersion) + Send + 'static) {
        self.rollback_hook = Some(Box::new(hook));
    }

    /// The currently active speculative value, if any.
    pub fn active(&self) -> Option<(SpecVersion, &T)> {
        match &self.phase {
            Phase::Active { version, value, .. } => Some((*version, value)),
            _ => None,
        }
    }

    /// The value under final validation, if the manager is between
    /// [`Self::on_final`] and [`Self::on_final_check_result`].
    pub fn pending_final(&self) -> Option<(SpecVersion, &T)> {
        match &self.phase {
            Phase::FinalChecking { version, value } => Some((*version, value)),
            _ => None,
        }
    }

    /// The committed version, once decided.
    pub fn committed(&self) -> Option<SpecVersion> {
        match self.phase {
            Phase::Done { committed } => committed,
            _ => None,
        }
    }

    /// Whether the manager reached its terminal phase.
    pub fn is_done(&self) -> bool {
        matches!(self.phase, Phase::Done { .. })
    }

    /// Statistics so far.
    pub fn stats(&self) -> ManagerStats {
        self.stats
    }

    /// Version lifecycle introspection.
    pub fn version_state(&self, v: SpecVersion) -> Option<VersionState> {
        self.tracker.state(v)
    }

    /// Record the causal lineage of a freshly allocated version and emit
    /// the [`EventKind::LineageOpen`] declaration: fresh predictions are
    /// self-rooted at depth 0; promoted candidates inherit the parent's
    /// root one level deeper. The declaration rides the control ring, so
    /// every later event carrying this version number joins to its
    /// lineage offline (`LineageTable::from_log`).
    fn open_lineage(&mut self, version: SpecVersion, parent: Option<SpecVersion>) {
        let (root, parent_v, depth) = match parent {
            None => (version, 0, 0),
            Some(p) => {
                let (root, pd) = self.lineage.get(p as usize - 1).copied().unwrap_or((p, 0));
                (root, p, pd + 1)
            }
        };
        let slot = version as usize - 1;
        if self.lineage.len() <= slot {
            self.lineage.resize(slot + 1, (0, 0));
        }
        self.lineage[slot] = (root, depth);
        if depth == 0 {
            self.lineage_roots += 1;
            self.metrics
                .gauge_set(Gauge::LineageRoots, self.lineage_roots);
        }
        self.metrics.gauge_max(Gauge::LineageDepthMax, depth as u64);
        self.tracer.emit_control(EventKind::LineageOpen {
            version,
            root,
            parent: parent_v,
            depth,
        });
    }

    /// Distinct lineage roots opened so far (fresh, non-cascade
    /// predictions).
    pub fn lineage_roots(&self) -> u64 {
        self.lineage_roots
    }

    /// `(root, depth)` of `v`'s lineage, if this manager allocated it.
    pub fn lineage_of(&self, v: SpecVersion) -> Option<(SpecVersion, u32)> {
        self.lineage.get(v.checked_sub(1)? as usize).copied()
    }

    fn emit_rollback(&mut self, version: SpecVersion, out: &mut Vec<Action>) {
        self.tracker.abort(version);
        self.stats.rollbacks += 1;
        if let Some(hook) = &mut self.rollback_hook {
            hook(version);
        }
        out.push(Action::Rollback { version });
        self.breaker_failure();
    }

    fn breaker_failure(&mut self) {
        let basis = self.last_basis;
        let mut tripped = false;
        if let Some(b) = &mut self.breaker {
            if let Some(BreakerTransition::Tripped { failures, commits }) = b.record_failure(basis)
            {
                self.stats.breaker_trips += 1;
                self.tracer
                    .emit_control(EventKind::BreakerTrip { failures, commits });
                tripped = true;
            }
        }
        self.publish_breaker_gauge();
        self.note_ladder(false, tripped);
    }

    fn breaker_success(&mut self) {
        if let Some(b) = &mut self.breaker {
            if let Some(BreakerTransition::Recovered { successes }) = b.record_success() {
                self.tracer
                    .emit_control(EventKind::BreakerRecover { successes });
            }
        }
        self.publish_breaker_gauge();
        self.note_ladder(true, false);
    }

    /// An executor caught a fault (panicked task body, watchdog cancel)
    /// somewhere in this manager's pipeline. Counts toward the breaker's
    /// failure window — repeated machine faults degrade speculation to the
    /// natural path just like repeated mispredictions do.
    pub fn record_fault(&mut self) {
        self.stats.faults += 1;
        self.breaker_failure();
    }

    /// The replication validation plane compared a task's replica votes
    /// (see `tvs_sre::replica::ReplicatingWorkload`). A mismatch is
    /// silent data corruption — it feeds the breaker's failure window
    /// exactly like a loud fault, because a machine that corrupts
    /// outputs is a machine whose speculation cannot be trusted either.
    /// Matches are recorded for the stats only; they are routine, not
    /// evidence of health worth closing the breaker over.
    pub fn on_replica_result(&mut self, matched: bool) {
        if matched {
            self.stats.replica_checks += 1;
        } else {
            self.stats.sdc_detected += 1;
            self.breaker_failure();
        }
    }

    /// A basis event completed (the `basis`-th, 1-based). Returns the
    /// actions to take.
    pub fn on_basis(&mut self, basis: u64) -> Vec<Action> {
        let mut out = Vec::new();
        self.on_basis_into(basis, &mut out);
        out
    }

    /// [`Self::on_basis`], appending actions to a caller-provided scratch
    /// vector instead of allocating one — the per-block hot-path variant
    /// (workloads keep one scratch `Vec<Action>` for the whole run).
    pub fn on_basis_into(&mut self, basis: u64, out: &mut Vec<Action>) {
        assert!(!self.final_seen, "basis events after the final value");
        assert!(basis >= self.last_basis, "basis events must be monotone");
        self.last_basis = basis;
        match &self.phase {
            Phase::Idle { restart } => {
                // Ask the schedule first: a half-open breaker's allows()
                // *claims* the single probe slot, so it must only be
                // consulted when a prediction would actually start —
                // otherwise the claim leaks and the probe never flies.
                // The ladder gate sits between for the same reason: at
                // NonSpeculative or below, no prediction will start, so
                // the breaker must not be asked (its probe would leak).
                let wants_start = self.schedule.should_start(basis, *restart);
                let ladder_allows = self
                    .ladder
                    .as_ref()
                    .is_none_or(|l| l.level().allows_speculation());
                let breaker_allows = wants_start
                    && ladder_allows
                    && match &mut self.breaker {
                        Some(b) => b.allows(basis),
                        None => true,
                    };
                self.publish_breaker_gauge();
                if breaker_allows {
                    let version = self.tracker.allocate(basis);
                    self.open_lineage(version, None);
                    self.phase = Phase::Pending { version };
                    self.stats.predictions += 1;
                    self.metrics.add_control(Counter::Predictions, 1);
                    self.tracer
                        .emit_control(EventKind::PredictorFire { version, basis });
                    if let Some(b) = &mut self.breaker {
                        if b.note_prediction(version) {
                            self.tracer
                                .emit_control(EventKind::BreakerProbe { version });
                        }
                    }
                    out.push(Action::StartPrediction { version });
                }
            }
            Phase::Active {
                version,
                installed_at,
                ..
            } => {
                if self.verify.should_check(basis, *installed_at) {
                    self.stats.checks += 1;
                    out.push(Action::SpawnCheck { version: *version });
                }
            }
            Phase::Pending { .. } | Phase::FinalChecking { .. } | Phase::Done { .. } => {}
        }
    }

    /// A predictor task delivered its value. Returns `false` when the
    /// version lost a race against rollback and the value was dropped.
    pub fn install_prediction(&mut self, version: SpecVersion, value: T) -> bool {
        match &self.phase {
            Phase::Pending { version: v } if *v == version => {
                if !self.tracker.activate(version) {
                    self.stats.stale_results += 1;
                    return false;
                }
                let installed_at = self.tracker.basis_of(version).expect("allocated");
                self.tracer.emit_control(EventKind::VersionOpen {
                    version,
                    basis: installed_at,
                });
                self.phase = Phase::Active {
                    version,
                    value,
                    installed_at,
                };
                true
            }
            _ => {
                self.stats.stale_results += 1;
                false
            }
        }
    }

    /// An intermediate check task reported. `candidate` is the fresh value
    /// the check built from basis event `candidate_basis` (promoted on
    /// failure; dropped on success).
    pub fn on_check_result(
        &mut self,
        version: SpecVersion,
        result: CheckResult,
        candidate: Option<(T, u64)>,
    ) -> Vec<Action> {
        let mut out = Vec::new();
        self.on_check_result_into(version, result, candidate, &mut out);
        out
    }

    /// [`Self::on_check_result`] into a caller-provided scratch vector.
    pub fn on_check_result_into(
        &mut self,
        version: SpecVersion,
        result: CheckResult,
        candidate: Option<(T, u64)>,
        out: &mut Vec<Action>,
    ) {
        let is_current_active =
            matches!(&self.phase, Phase::Active { version: v, .. } if *v == version);
        if !is_current_active {
            self.stats.stale_results += 1;
            return;
        }
        if result.valid {
            self.stats.checks_passed += 1;
            self.metrics.add_control(Counter::ChecksPassed, 1);
            self.tracer.emit_control(EventKind::CheckPass {
                version,
                margin: result.delta,
            });
            self.breaker_success();
            return;
        }
        self.stats.checks_failed += 1;
        self.metrics.add_control(Counter::ChecksFailed, 1);
        self.tracer.emit_control(EventKind::CheckFail {
            version,
            margin: result.delta,
        });
        self.emit_rollback(version, out);
        match candidate {
            Some((value, candidate_basis)) => {
                // A tripped breaker suppresses candidate promotion the same
                // way it suppresses fresh predictions: mispredicting runs
                // fall back to conservative dispatch instead of chaining
                // doomed versions, until a cooldown and probe recover.
                // The ladder adds the middle rung: at CappedDepth the
                // promotion is allowed only while the cascade stays within
                // the configured depth cap (the candidate would sit one
                // level below the version that just failed); deeper rungs
                // suppress promotion entirely. The ladder is checked
                // before the breaker so a suppressed promotion cannot
                // leak a half-open probe claim.
                let ladder_allows = match &self.ladder {
                    None => true,
                    Some(l) => {
                        let lvl = l.level();
                        if !lvl.allows_speculation() {
                            false
                        } else if lvl == DegradationLevel::CappedDepth {
                            let parent_depth = self
                                .lineage
                                .get(version as usize - 1)
                                .map_or(0, |&(_, d)| d);
                            parent_depth < l.depth_cap()
                        } else {
                            true
                        }
                    }
                };
                let breaker_allows = ladder_allows
                    && match &mut self.breaker {
                        Some(b) => b.allows(candidate_basis),
                        None => true,
                    };
                self.publish_breaker_gauge();
                if breaker_allows {
                    let v2 = self.tracker.allocate(candidate_basis);
                    self.open_lineage(v2, Some(version));
                    assert!(self.tracker.activate(v2), "fresh version cannot be aborted");
                    self.stats.predictions += 1;
                    self.metrics.add_control(Counter::Predictions, 1);
                    self.tracer.emit_control(EventKind::VersionOpen {
                        version: v2,
                        basis: candidate_basis,
                    });
                    if let Some(b) = &mut self.breaker {
                        if b.note_prediction(v2) {
                            self.tracer
                                .emit_control(EventKind::BreakerProbe { version: v2 });
                        }
                    }
                    self.phase = Phase::Active {
                        version: v2,
                        value,
                        installed_at: candidate_basis,
                    };
                    out.push(Action::PromoteCandidate { version: v2 });
                } else {
                    self.phase = Phase::Idle { restart: true };
                }
            }
            None => {
                self.phase = Phase::Idle { restart: true };
            }
        }
    }

    /// The executor killed `version` from outside the check path — a
    /// speculative task body panicked or the watchdog cancelled it, and
    /// the executor already aborted the version in the scheduler. Brings
    /// the manager's phase in line and reuses the rollback funnel (undo
    /// hooks, stats, breaker, [`Action::Rollback`] — scheduler aborts are
    /// idempotent, so the host re-executing the abort is harmless).
    ///
    /// Counts as a fault *and* a rollback for the breaker window.
    pub fn on_external_abort(&mut self, version: SpecVersion) -> Vec<Action> {
        let mut out = Vec::new();
        self.on_external_abort_into(version, &mut out);
        out
    }

    /// [`Self::on_external_abort`] into a caller-provided scratch vector.
    pub fn on_external_abort_into(&mut self, version: SpecVersion, out: &mut Vec<Action>) {
        self.stats.external_aborts += 1;
        match &self.phase {
            Phase::Pending { version: v } if *v == version => {
                self.emit_rollback(version, out);
                self.phase = Phase::Idle { restart: true };
            }
            Phase::Active { version: v, .. } if *v == version => {
                self.emit_rollback(version, out);
                self.phase = Phase::Idle { restart: true };
            }
            Phase::FinalChecking { version: v, .. } if *v == version => {
                // The decisive comparison can never pass a dead version:
                // go natural immediately.
                self.emit_rollback(version, out);
                self.phase = Phase::Done { committed: None };
                out.push(Action::RecomputeNaturally);
            }
            _ => {
                // The version was already gone (e.g. its check failed in
                // the same batch); nothing to roll back twice.
                self.stats.stale_results += 1;
            }
        }
    }

    /// The true final value became available. Returns either the final
    /// check to spawn or the decision to recompute naturally.
    pub fn on_final(&mut self) -> Vec<Action> {
        let mut out = Vec::new();
        self.on_final_into(&mut out);
        out
    }

    /// [`Self::on_final`] into a caller-provided scratch vector.
    pub fn on_final_into(&mut self, out: &mut Vec<Action>) {
        assert!(!self.final_seen, "on_final called twice");
        self.final_seen = true;
        match std::mem::replace(&mut self.phase, Phase::Done { committed: None }) {
            Phase::Active { version, value, .. } => {
                self.phase = Phase::FinalChecking { version, value };
                out.push(Action::SpawnFinalCheck { version });
            }
            Phase::Pending { version } => {
                // The predictor never finished: kill it and go natural.
                self.emit_rollback(version, out);
                out.push(Action::RecomputeNaturally);
            }
            Phase::Idle { .. } => {
                out.push(Action::RecomputeNaturally);
            }
            Phase::FinalChecking { .. } | Phase::Done { .. } => {
                unreachable!("final value delivered in a terminal phase")
            }
        }
    }

    /// The final check reported: commit or recompute.
    pub fn on_final_check_result(
        &mut self,
        version: SpecVersion,
        result: CheckResult,
    ) -> Vec<Action> {
        let mut out = Vec::new();
        self.on_final_check_result_into(version, result, &mut out);
        out
    }

    /// [`Self::on_final_check_result`] into a caller-provided scratch
    /// vector.
    pub fn on_final_check_result_into(
        &mut self,
        version: SpecVersion,
        result: CheckResult,
        out: &mut Vec<Action>,
    ) {
        match std::mem::replace(&mut self.phase, Phase::Done { committed: None }) {
            Phase::FinalChecking { version: v, .. } if v == version => {
                if result.valid {
                    self.tracker.commit(version);
                    self.metrics.add_control(Counter::ChecksPassed, 1);
                    self.metrics.add_control(Counter::Commits, 1);
                    self.tracer.emit_control(EventKind::CheckPass {
                        version,
                        margin: result.delta,
                    });
                    self.tracer.emit_control(EventKind::Commit { version });
                    self.phase = Phase::Done {
                        committed: Some(version),
                    };
                    self.breaker_success();
                    out.push(Action::Commit { version });
                } else {
                    self.stats.checks_failed += 1;
                    self.metrics.add_control(Counter::ChecksFailed, 1);
                    self.tracer.emit_control(EventKind::CheckFail {
                        version,
                        margin: result.delta,
                    });
                    self.emit_rollback(version, out);
                    out.push(Action::RecomputeNaturally);
                }
            }
            other => {
                self.phase = other;
                self.stats.stale_results += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::CheckResult;

    fn mgr(step: u64, verify: VerificationPolicy) -> SpeculationManager<&'static str> {
        SpeculationManager::new(SpeculationSchedule::with_step(step), verify)
    }

    #[test]
    fn no_rollback_happy_path() {
        let mut m = mgr(1, VerificationPolicy::EveryKth(2));
        // Basis 1: start prediction.
        let a = m.on_basis(1);
        assert_eq!(a, vec![Action::StartPrediction { version: 1 }]);
        assert!(m.install_prediction(1, "tree-v1"));
        assert_eq!(m.active(), Some((1, &"tree-v1")));
        // Basis 2: check due (every 2nd).
        assert_eq!(m.on_basis(2), vec![Action::SpawnCheck { version: 1 }]);
        assert!(m
            .on_check_result(1, CheckResult::pass(0.001), None)
            .is_empty());
        // Basis 3: no check (odd).
        assert!(m.on_basis(3).is_empty());
        // Final: decisive check, then commit.
        assert_eq!(m.on_final(), vec![Action::SpawnFinalCheck { version: 1 }]);
        assert_eq!(m.pending_final(), Some((1, &"tree-v1")));
        assert_eq!(
            m.on_final_check_result(1, CheckResult::pass(0.004)),
            vec![Action::Commit { version: 1 }]
        );
        assert_eq!(m.committed(), Some(1));
        assert!(m.is_done());
        let s = m.stats();
        assert_eq!(s.predictions, 1);
        assert_eq!(s.rollbacks, 0);
    }

    #[test]
    fn failed_check_promotes_candidate() {
        let mut m = mgr(1, VerificationPolicy::Full);
        m.on_basis(1);
        m.install_prediction(1, "v1");
        assert_eq!(m.on_basis(2), vec![Action::SpawnCheck { version: 1 }]);
        let acts = m.on_check_result(1, CheckResult::fail(0.09), Some(("v2", 2)));
        assert_eq!(
            acts,
            vec![
                Action::Rollback { version: 1 },
                Action::PromoteCandidate { version: 2 }
            ]
        );
        assert_eq!(m.active(), Some((2, &"v2")));
        assert_eq!(m.version_state(1), Some(VersionState::Aborted));
        assert_eq!(m.stats().rollbacks, 1);
        // The promoted version commits at final.
        m.on_final();
        let acts = m.on_final_check_result(2, CheckResult::pass(0.0));
        assert_eq!(acts, vec![Action::Commit { version: 2 }]);
    }

    #[test]
    fn failed_check_without_candidate_restarts_on_next_basis() {
        let mut m = mgr(100, VerificationPolicy::Full);
        // step=100 would normally delay the start...
        assert!(m.on_basis(99).is_empty());
        let a = m.on_basis(100);
        assert_eq!(a, vec![Action::StartPrediction { version: 1 }]);
        m.install_prediction(1, "v1");
        m.on_basis(101);
        let acts = m.on_check_result(1, CheckResult::fail(1.0), None);
        assert_eq!(acts, vec![Action::Rollback { version: 1 }]);
        // ...but a restart ignores the step.
        let a = m.on_basis(102);
        assert_eq!(a, vec![Action::StartPrediction { version: 2 }]);
    }

    #[test]
    fn failed_final_check_recomputes() {
        let mut m = mgr(0, VerificationPolicy::Optimistic);
        m.on_basis(1);
        m.install_prediction(1, "v1");
        // Optimistic: no intermediate checks ever.
        for b in 2..50 {
            assert!(m.on_basis(b).is_empty());
        }
        assert_eq!(m.on_final(), vec![Action::SpawnFinalCheck { version: 1 }]);
        let acts = m.on_final_check_result(1, CheckResult::fail(0.3));
        assert_eq!(
            acts,
            vec![Action::Rollback { version: 1 }, Action::RecomputeNaturally]
        );
        assert_eq!(m.committed(), None);
        assert!(m.is_done());
    }

    #[test]
    fn final_with_pending_prediction_recomputes() {
        let mut m = mgr(1, VerificationPolicy::baseline());
        m.on_basis(1);
        let acts = m.on_final();
        assert_eq!(
            acts,
            vec![Action::Rollback { version: 1 }, Action::RecomputeNaturally]
        );
        // The late prediction is dropped.
        assert!(!m.install_prediction(1, "late"));
        assert_eq!(m.stats().stale_results, 1);
    }

    #[test]
    fn final_without_any_speculation_recomputes() {
        let mut m = mgr(1000, VerificationPolicy::baseline());
        m.on_basis(1);
        m.on_basis(2);
        assert_eq!(m.on_final(), vec![Action::RecomputeNaturally]);
    }

    #[test]
    fn stale_check_results_ignored() {
        let mut m = mgr(1, VerificationPolicy::Full);
        m.on_basis(1);
        m.install_prediction(1, "v1");
        m.on_basis(2);
        // Two checks in flight: first fails, promoting v2; the second
        // (also against v1) arrives stale and must be ignored.
        m.on_check_result(1, CheckResult::fail(0.2), Some(("v2", 2)));
        let acts = m.on_check_result(1, CheckResult::fail(0.2), Some(("v3", 2)));
        assert!(acts.is_empty());
        assert_eq!(m.stats().stale_results, 1);
        assert_eq!(m.active().unwrap().0, 2);
    }

    #[test]
    fn lifecycle_events_reach_the_tracer() {
        let tracer = Tracer::enabled(1);
        let mut m = mgr(1, VerificationPolicy::Full);
        m.set_tracer(tracer.clone());
        m.on_basis(1);
        m.install_prediction(1, "v1");
        m.on_basis(2);
        // Failed check with a candidate: fail + reopen under v2.
        m.on_check_result(1, CheckResult::fail(0.09), Some(("v2", 2)));
        m.on_basis(3);
        m.on_check_result(2, CheckResult::pass(0.01), None);
        m.on_final();
        m.on_final_check_result(2, CheckResult::pass(0.002));
        let log = tracer.drain().expect("enabled tracer drains");
        assert_eq!(log.count("predictor-fire"), 1);
        assert_eq!(log.count("version-open"), 2, "install + promote");
        assert_eq!(log.count("check-pass"), 2, "intermediate + final");
        assert_eq!(log.count("check-fail"), 1);
        assert_eq!(log.count("commit"), 1);
        assert_eq!(
            log.count("rollback"),
            0,
            "rollback events belong to the scheduler, not the manager"
        );
    }

    #[test]
    fn lineage_declarations_chain_cascades_to_their_root() {
        let tracer = Tracer::enabled(1);
        let mut m = mgr(1, VerificationPolicy::Full);
        m.set_tracer(tracer.clone());
        // v1 fresh → fails → v2 promoted → fails → v3 promoted.
        m.on_basis(1);
        m.install_prediction(1, "v1");
        m.on_basis(2);
        m.on_check_result(1, CheckResult::fail(0.9), Some(("v2", 2)));
        m.on_basis(3);
        m.on_check_result(2, CheckResult::fail(0.9), Some(("v3", 3)));
        // A fresh line after the cascade dies.
        m.on_basis(4);
        m.on_check_result(3, CheckResult::fail(0.9), None);
        m.on_basis(5);

        assert_eq!(m.lineage_of(1), Some((1, 0)), "fresh line is self-rooted");
        assert_eq!(m.lineage_of(2), Some((1, 1)), "promotion inherits the root");
        assert_eq!(m.lineage_of(3), Some((1, 2)), "cascade deepens");
        assert_eq!(m.lineage_of(4), Some((4, 0)), "restart opens a new root");
        assert_eq!(m.lineage_roots(), 2);

        let log = tracer.drain().expect("enabled tracer drains");
        assert_eq!(log.count("lineage-open"), 4, "one declaration per version");
        let lineage = log.lineage();
        let v3 = lineage.lineage_of(3).expect("v3 joins");
        assert_eq!((v3.root, v3.parent, v3.depth), (1, Some(2), 2));
    }

    #[test]
    fn rollback_hook_fires() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;
        let seen = Arc::new(AtomicU32::new(0));
        let seen2 = Arc::clone(&seen);
        let mut m = mgr(1, VerificationPolicy::Full);
        m.set_rollback_hook(move |v| {
            seen2.store(v, Ordering::SeqCst);
        });
        m.on_basis(1);
        m.install_prediction(1, "v1");
        m.on_basis(2);
        m.on_check_result(1, CheckResult::fail(0.5), None);
        assert_eq!(seen.load(Ordering::SeqCst), 1);
    }

    fn breaker_cfg() -> BreakerConfig {
        BreakerConfig {
            window: 4,
            min_samples: 2,
            trip_ratio: 0.5,
            cooldown: 3,
            probe_successes: 1,
        }
    }

    #[test]
    fn breaker_trips_on_sustained_rollbacks_and_recovers_via_probe() {
        let tracer = Tracer::enabled(1);
        let mut m = mgr(1, VerificationPolicy::Full);
        m.set_tracer(tracer.clone());
        m.set_breaker(breaker_cfg());
        assert_eq!(m.breaker_state(), Some(BreakerState::Closed));

        // Two failed speculations in a row: second rollback trips.
        assert_eq!(m.on_basis(1), vec![Action::StartPrediction { version: 1 }]);
        m.install_prediction(1, "v1");
        assert_eq!(m.on_basis(2), vec![Action::SpawnCheck { version: 1 }]);
        m.on_check_result(1, CheckResult::fail(0.9), None);
        assert_eq!(m.breaker_state(), Some(BreakerState::Closed));
        assert_eq!(m.on_basis(3), vec![Action::StartPrediction { version: 2 }]);
        m.install_prediction(2, "v2");
        assert_eq!(m.on_basis(4), vec![Action::SpawnCheck { version: 2 }]);
        m.on_check_result(2, CheckResult::fail(0.9), None);
        assert_eq!(m.breaker_state(), Some(BreakerState::Open));
        assert_eq!(m.stats().breaker_trips, 1);

        // Open: predictions suppressed despite the pending restart.
        assert!(m.on_basis(5).is_empty());
        assert!(m.on_basis(6).is_empty());

        // Cooldown over: half-open lets one probe through.
        assert_eq!(m.on_basis(7), vec![Action::StartPrediction { version: 3 }]);
        assert_eq!(m.breaker_state(), Some(BreakerState::HalfOpen));
        m.install_prediction(3, "v3");
        assert_eq!(m.on_basis(8), vec![Action::SpawnCheck { version: 3 }]);
        m.on_check_result(3, CheckResult::pass(0.01), None);
        assert_eq!(m.breaker_state(), Some(BreakerState::Closed));

        let log = tracer.drain().expect("enabled tracer drains");
        assert_eq!(log.count("breaker-trip"), 1);
        assert_eq!(log.count("breaker-probe"), 1);
        assert_eq!(log.count("breaker-recover"), 1);
    }

    #[test]
    fn tripped_breaker_suppresses_candidate_promotion() {
        let mut m = mgr(1, VerificationPolicy::Full);
        m.set_breaker(breaker_cfg());

        // First failure promotes its candidate: breaker still closed.
        m.on_basis(1);
        m.install_prediction(1, "v1");
        m.on_basis(2);
        let acts = m.on_check_result(1, CheckResult::fail(0.9), Some(("c1", 2)));
        assert_eq!(
            acts,
            vec![
                Action::Rollback { version: 1 },
                Action::PromoteCandidate { version: 2 }
            ]
        );

        // Second failure trips; the fresh candidate must NOT be promoted —
        // the run degrades to the natural path instead of chaining doomed
        // versions.
        m.on_basis(3);
        let acts = m.on_check_result(2, CheckResult::fail(0.9), Some(("c2", 3)));
        assert_eq!(acts, vec![Action::Rollback { version: 2 }]);
        assert_eq!(m.breaker_state(), Some(BreakerState::Open));
        assert_eq!(m.active(), None);
        assert_eq!(m.stats().breaker_trips, 1);

        // After the cooldown the restart flag lets a probe prediction out.
        assert!(m.on_basis(4).is_empty());
        assert!(m.on_basis(5).is_empty());
        assert_eq!(m.on_basis(6), vec![Action::StartPrediction { version: 3 }]);
        assert_eq!(m.breaker_state(), Some(BreakerState::HalfOpen));
    }

    #[test]
    fn breaker_trip_steps_the_ladder_down_within_one_window() {
        let tracer = Tracer::enabled(1);
        let mut m = mgr(1, VerificationPolicy::Full);
        m.set_tracer(tracer.clone());
        m.set_breaker(breaker_cfg());
        // A window far larger than the test so only the trip can step.
        m.set_ladder(LadderConfig {
            window: 64,
            min_samples: 4,
            trip_ratio: 0.5,
            up_windows: 2,
            depth_cap: 1,
        });
        assert_eq!(m.ladder_level(), Some(DegradationLevel::Full));
        m.record_fault();
        assert_eq!(m.ladder_level(), Some(DegradationLevel::Full));
        m.record_fault(); // trips the breaker → immediate ladder step
        assert_eq!(m.breaker_state(), Some(BreakerState::Open));
        assert_eq!(m.ladder_level(), Some(DegradationLevel::CappedDepth));
        assert_eq!(m.stats().ladder_steps, 1);
        let log = tracer.drain().expect("drains");
        assert_eq!(log.count("breaker-trip"), 1);
        assert_eq!(log.count("ladder-step"), 1);
    }

    #[test]
    fn ladder_at_non_speculative_suppresses_predictions() {
        let mut m = mgr(1, VerificationPolicy::Full);
        m.set_ladder(LadderConfig {
            window: 2,
            min_samples: 1,
            trip_ratio: 0.5,
            up_windows: 2,
            depth_cap: 1,
        });
        // Two all-fail windows walk the ladder to NonSpeculative.
        let mut basis = 0;
        for expect_version in 1..=4u32 {
            basis += 1;
            assert_eq!(
                m.on_basis(basis),
                vec![Action::StartPrediction {
                    version: expect_version
                }],
                "speculation still allowed above NonSpeculative"
            );
            m.install_prediction(expect_version, "v");
            basis += 1;
            m.on_basis(basis);
            m.on_check_result(expect_version, CheckResult::fail(0.9), None);
        }
        assert_eq!(m.ladder_level(), Some(DegradationLevel::NonSpeculative));
        assert_eq!(m.stats().ladder_steps, 2);
        // Despite the pending restart, no prediction starts any more.
        assert!(m.on_basis(basis + 1).is_empty());
        assert!(m.on_basis(basis + 2).is_empty());
    }

    #[test]
    fn capped_depth_blocks_promotions_beyond_the_cap() {
        let mut m = mgr(1, VerificationPolicy::Full);
        m.set_ladder(LadderConfig {
            window: 2,
            min_samples: 1,
            trip_ratio: 0.5,
            up_windows: 2,
            depth_cap: 1,
        });
        // First failure (window still open, level Full): candidate
        // promoted to depth 1.
        m.on_basis(1);
        m.install_prediction(1, "v1");
        m.on_basis(2);
        let acts = m.on_check_result(1, CheckResult::fail(0.9), Some(("c1", 2)));
        assert_eq!(
            acts,
            vec![
                Action::Rollback { version: 1 },
                Action::PromoteCandidate { version: 2 }
            ]
        );
        assert_eq!(m.lineage_of(2), Some((1, 1)));
        // Second failure closes the window → CappedDepth; the candidate
        // would sit at depth 2 > cap 1, so promotion is suppressed.
        m.on_basis(3);
        let acts = m.on_check_result(2, CheckResult::fail(0.9), Some(("c2", 3)));
        assert_eq!(acts, vec![Action::Rollback { version: 2 }]);
        assert_eq!(m.ladder_level(), Some(DegradationLevel::CappedDepth));
        assert_eq!(m.active(), None);
        // Fresh predictions (depth 0) still start at CappedDepth...
        assert_eq!(m.on_basis(4), vec![Action::StartPrediction { version: 3 }]);
        assert_eq!(m.lineage_of(3), Some((3, 0)));
        // ...and their first promotion (depth 1 = cap) is still allowed.
        m.install_prediction(3, "v3");
        m.on_basis(5);
        let acts = m.on_check_result(3, CheckResult::fail(0.9), Some(("c3", 5)));
        assert_eq!(
            acts,
            vec![
                Action::Rollback { version: 3 },
                Action::PromoteCandidate { version: 4 }
            ]
        );
    }

    #[test]
    fn ladder_recovers_with_hysteresis_after_clean_windows() {
        let mut m = mgr(1, VerificationPolicy::Full);
        m.set_ladder(LadderConfig {
            window: 2,
            min_samples: 1,
            trip_ratio: 0.5,
            up_windows: 2,
            depth_cap: 1,
        });
        // One bad window: Full → CappedDepth.
        let mut basis = 0;
        for v in 1..=2u32 {
            basis += 1;
            m.on_basis(basis);
            m.install_prediction(v, "v");
            basis += 1;
            m.on_basis(basis);
            m.on_check_result(v, CheckResult::fail(0.9), None);
        }
        assert_eq!(m.ladder_level(), Some(DegradationLevel::CappedDepth));
        // One clean window (2 passes) is not enough — hysteresis.
        basis += 1;
        m.on_basis(basis);
        m.install_prediction(3, "v3");
        for _ in 0..2 {
            basis += 1;
            m.on_basis(basis);
            m.on_check_result(3, CheckResult::pass(0.0), None);
        }
        assert_eq!(m.ladder_level(), Some(DegradationLevel::CappedDepth));
        // The second consecutive clean window steps back up.
        for _ in 0..2 {
            basis += 1;
            m.on_basis(basis);
            m.on_check_result(3, CheckResult::pass(0.0), None);
        }
        assert_eq!(m.ladder_level(), Some(DegradationLevel::Full));
        assert_eq!(m.stats().ladder_steps, 2);
    }

    #[test]
    fn external_abort_rolls_back_the_active_version() {
        let mut m = mgr(1, VerificationPolicy::Full);
        m.on_basis(1);
        m.install_prediction(1, "v1");
        assert_eq!(
            m.on_external_abort(1),
            vec![Action::Rollback { version: 1 }]
        );
        assert_eq!(m.active(), None);
        assert_eq!(m.version_state(1), Some(VersionState::Aborted));
        let s = m.stats();
        assert_eq!(s.external_aborts, 1);
        assert_eq!(s.rollbacks, 1);
        // The restart flag is set: speculation resumes on the next basis.
        assert_eq!(m.on_basis(2), vec![Action::StartPrediction { version: 2 }]);
        // A second report for the same dead version is stale.
        assert!(m.on_external_abort(1).is_empty());
        assert_eq!(m.stats().stale_results, 1);
    }

    #[test]
    fn external_abort_during_final_check_recomputes() {
        let mut m = mgr(1, VerificationPolicy::Optimistic);
        m.on_basis(1);
        m.install_prediction(1, "v1");
        assert_eq!(m.on_final(), vec![Action::SpawnFinalCheck { version: 1 }]);
        assert_eq!(
            m.on_external_abort(1),
            vec![Action::Rollback { version: 1 }, Action::RecomputeNaturally]
        );
        assert!(m.is_done());
        assert_eq!(m.committed(), None);
        // The straggling final verdict is stale, not a second decision.
        assert!(m
            .on_final_check_result(1, CheckResult::pass(0.0))
            .is_empty());
    }

    #[test]
    fn executor_faults_alone_can_trip_the_breaker() {
        let tracer = Tracer::enabled(1);
        let mut m = mgr(1, VerificationPolicy::Full);
        m.set_tracer(tracer.clone());
        m.set_breaker(breaker_cfg());
        m.record_fault();
        assert_eq!(m.breaker_state(), Some(BreakerState::Closed));
        m.record_fault();
        assert_eq!(m.breaker_state(), Some(BreakerState::Open));
        let s = m.stats();
        assert_eq!(s.faults, 2);
        assert_eq!(s.breaker_trips, 1);
        assert_eq!(s.rollbacks, 0, "faults trip without any rollback");
        let log = tracer.drain().expect("drains");
        assert_eq!(log.count("breaker-trip"), 1);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn non_monotone_basis_panics() {
        let mut m = mgr(1, VerificationPolicy::Full);
        m.on_basis(5);
        m.on_basis(4);
    }

    #[test]
    #[should_panic(expected = "on_final called twice")]
    fn double_final_panics() {
        let mut m = mgr(1000, VerificationPolicy::Full);
        m.on_final();
        m.on_final();
    }

    #[test]
    fn check_counts_accumulate() {
        let mut m = mgr(1, VerificationPolicy::Full);
        m.on_basis(1);
        m.install_prediction(1, "v");
        for b in 2..=5 {
            m.on_basis(b);
            m.on_check_result(1, CheckResult::pass(0.0), None);
        }
        let s = m.stats();
        assert_eq!(s.checks, 4);
        assert_eq!(s.checks_passed, 4);
        assert_eq!(s.checks_failed, 0);
    }
}
