//! The Wait task: a side-effect barrier for speculative outputs.
//!
//! "When speculative data arrives at a state-modifying task such as writing
//! to disk or network I/O, it is buffered until the validity of the
//! speculation is confirmed." The [`WaitBuffer`] holds those outputs,
//! partitioned by speculation version and ordered by an application slot
//! key (block index for the Huffman encoder), until the version is either
//! committed (outputs released, in order) or aborted (outputs reclaimed).

use std::collections::BTreeMap;
use std::collections::HashMap;
use tvs_sre::SpecVersion;

/// Buffered speculative outputs awaiting validation.
#[derive(Debug)]
pub struct WaitBuffer<V> {
    by_version: HashMap<SpecVersion, BTreeMap<u64, V>>,
    /// Total values ever buffered (metrics).
    buffered: u64,
    /// Total values discarded by aborts (metrics).
    discarded: u64,
}

impl<V> Default for WaitBuffer<V> {
    fn default() -> Self {
        WaitBuffer {
            by_version: HashMap::new(),
            buffered: 0,
            discarded: 0,
        }
    }
}

impl<V> WaitBuffer<V> {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffer `value` produced under `version` for slot `slot` (e.g. block
    /// index). A later value for the same (version, slot) replaces the
    /// earlier one and returns the old value.
    pub fn push(&mut self, version: SpecVersion, slot: u64, value: V) -> Option<V> {
        self.buffered += 1;
        self.by_version
            .entry(version)
            .or_default()
            .insert(slot, value)
    }

    /// Release all outputs of a committed version, ordered by slot.
    pub fn commit(&mut self, version: SpecVersion) -> Vec<(u64, V)> {
        self.by_version
            .remove(&version)
            .map(|m| m.into_iter().collect())
            .unwrap_or_default()
    }

    /// Reclaim (drop) all outputs of an aborted version; returns how many
    /// were discarded.
    pub fn abort(&mut self, version: SpecVersion) -> usize {
        let n = self
            .by_version
            .remove(&version)
            .map(|m| m.len())
            .unwrap_or(0);
        self.discarded += n as u64;
        n
    }

    /// Number of values currently held for `version`.
    pub fn len_of(&self, version: SpecVersion) -> usize {
        self.by_version.get(&version).map(|m| m.len()).unwrap_or(0)
    }

    /// Slots currently buffered for `version`, ascending.
    pub fn slots_of(&self, version: SpecVersion) -> Vec<u64> {
        self.by_version
            .get(&version)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default()
    }

    /// Total values currently held across versions.
    pub fn len(&self) -> usize {
        self.by_version.values().map(|m| m.len()).sum()
    }

    /// Whether the buffer is entirely empty.
    pub fn is_empty(&self) -> bool {
        self.by_version.values().all(|m| m.is_empty())
    }

    /// `(ever_buffered, ever_discarded)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.buffered, self.discarded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_releases_in_slot_order() {
        let mut b = WaitBuffer::new();
        b.push(1, 5, "f");
        b.push(1, 2, "c");
        b.push(1, 9, "j");
        let out = b.commit(1);
        assert_eq!(out, vec![(2, "c"), (5, "f"), (9, "j")]);
        assert!(b.is_empty());
    }

    #[test]
    fn versions_are_isolated() {
        let mut b = WaitBuffer::new();
        b.push(1, 0, 10);
        b.push(2, 0, 20);
        assert_eq!(b.len_of(1), 1);
        assert_eq!(b.len_of(2), 1);
        assert_eq!(b.abort(1), 1);
        assert_eq!(b.len_of(1), 0);
        assert_eq!(b.commit(2), vec![(0, 20)]);
    }

    #[test]
    fn replace_same_slot() {
        let mut b = WaitBuffer::new();
        assert_eq!(b.push(1, 3, "old"), None);
        assert_eq!(b.push(1, 3, "new"), Some("old"));
        assert_eq!(b.commit(1), vec![(3, "new")]);
    }

    #[test]
    fn commit_or_abort_of_unknown_version_is_empty() {
        let mut b: WaitBuffer<u8> = WaitBuffer::new();
        assert!(b.commit(7).is_empty());
        assert_eq!(b.abort(7), 0);
    }

    #[test]
    fn stats_track_buffered_and_discarded() {
        let mut b = WaitBuffer::new();
        b.push(1, 0, ());
        b.push(1, 1, ());
        b.push(2, 0, ());
        b.abort(1);
        assert_eq!(b.stats(), (3, 2));
        b.commit(2);
        assert_eq!(b.stats(), (3, 2));
    }

    #[test]
    fn slots_listing() {
        let mut b = WaitBuffer::new();
        b.push(4, 8, ());
        b.push(4, 1, ());
        assert_eq!(b.slots_of(4), vec![1, 8]);
        assert_eq!(b.slots_of(5), Vec::<u64>::new());
        assert_eq!(b.len(), 2);
    }
}
