//! The Wait task: a side-effect barrier for speculative outputs.
//!
//! "When speculative data arrives at a state-modifying task such as writing
//! to disk or network I/O, it is buffered until the validity of the
//! speculation is confirmed." The [`WaitBuffer`] holds those outputs,
//! partitioned by speculation version and ordered by an application slot
//! key (block index for the Huffman encoder), until the version is either
//! committed (outputs released, in order) or aborted (outputs reclaimed).
//!
//! Storage is a small linear map of `version → Vec<(slot, value)>` with the
//! per-version vectors recycled through a [`ScratchPool`]: at any moment
//! only a handful of versions are live, appends are push-onto-Vec, and the
//! slot ordering the committer needs is established by one sort at commit
//! time instead of a B-tree node allocation per buffered output.

use crate::arena::{AllocStats, ScratchPool};
use tvs_sre::SpecVersion;

/// Buffered speculative outputs awaiting validation.
#[derive(Debug)]
pub struct WaitBuffer<V> {
    /// Live versions and their buffered `(slot, value)` pairs. Linear — the
    /// speculation pipeline keeps at most a couple of versions in flight.
    by_version: Vec<(SpecVersion, Vec<(u64, V)>)>,
    /// Recycled per-version vectors (capacity survives commit/abort).
    pool: ScratchPool<(u64, V)>,
    /// Total values ever buffered (metrics).
    buffered: u64,
    /// Total values discarded by aborts (metrics).
    discarded: u64,
}

impl<V> Default for WaitBuffer<V> {
    fn default() -> Self {
        WaitBuffer {
            by_version: Vec::new(),
            pool: ScratchPool::new(),
            buffered: 0,
            discarded: 0,
        }
    }
}

impl<V> WaitBuffer<V> {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    fn entry(&self, version: SpecVersion) -> Option<&Vec<(u64, V)>> {
        self.by_version
            .iter()
            .find(|(v, _)| *v == version)
            .map(|(_, vals)| vals)
    }

    /// Buffer `value` produced under `version` for slot `slot` (e.g. block
    /// index). A later value for the same (version, slot) replaces the
    /// earlier one and returns the old value.
    pub fn push(&mut self, version: SpecVersion, slot: u64, value: V) -> Option<V> {
        self.buffered += 1;
        let idx = match self.by_version.iter().position(|(v, _)| *v == version) {
            Some(i) => i,
            None => {
                let vals = self.pool.take();
                self.by_version.push((version, vals));
                self.by_version.len() - 1
            }
        };
        let vals = &mut self.by_version[idx].1;
        if let Some(existing) = vals.iter_mut().find(|(s, _)| *s == slot) {
            return Some(std::mem::replace(&mut existing.1, value));
        }
        vals.push((slot, value));
        None
    }

    /// Release all outputs of a committed version into `out`, ordered by
    /// slot, recycling the internal storage. The zero-allocation twin of
    /// [`Self::commit`].
    pub fn commit_into(&mut self, version: SpecVersion, out: &mut Vec<(u64, V)>) {
        if let Some(i) = self.by_version.iter().position(|(v, _)| *v == version) {
            let (_, mut vals) = self.by_version.swap_remove(i);
            // Slots are unique (push replaces in place), so unstable is fine.
            vals.sort_unstable_by_key(|&(slot, _)| slot);
            out.append(&mut vals);
            self.pool.put(vals);
        }
    }

    /// Release all outputs of a committed version, ordered by slot.
    pub fn commit(&mut self, version: SpecVersion) -> Vec<(u64, V)> {
        let mut out = Vec::new();
        self.commit_into(version, &mut out);
        out
    }

    /// Reclaim (drop) all outputs of an aborted version; returns how many
    /// were discarded.
    pub fn abort(&mut self, version: SpecVersion) -> usize {
        match self.by_version.iter().position(|(v, _)| *v == version) {
            Some(i) => {
                let (_, vals) = self.by_version.swap_remove(i);
                let n = vals.len();
                self.discarded += n as u64;
                self.pool.put(vals);
                n
            }
            None => 0,
        }
    }

    /// Number of values currently held for `version`.
    pub fn len_of(&self, version: SpecVersion) -> usize {
        self.entry(version).map(|vals| vals.len()).unwrap_or(0)
    }

    /// Slots currently buffered for `version`, ascending.
    pub fn slots_of(&self, version: SpecVersion) -> Vec<u64> {
        let mut slots: Vec<u64> = self
            .entry(version)
            .map(|vals| vals.iter().map(|&(s, _)| s).collect())
            .unwrap_or_default();
        slots.sort_unstable();
        slots
    }

    /// Total values currently held across versions.
    pub fn len(&self) -> usize {
        self.by_version.iter().map(|(_, vals)| vals.len()).sum()
    }

    /// Whether the buffer is entirely empty.
    pub fn is_empty(&self) -> bool {
        self.by_version.iter().all(|(_, vals)| vals.is_empty())
    }

    /// `(ever_buffered, ever_discarded)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.buffered, self.discarded)
    }

    /// Heap-allocation counters of the internal vector pool.
    pub fn alloc_stats(&self) -> AllocStats {
        self.pool.stats()
    }

    /// Zero the internal pool's allocation counters (bench warm-up).
    pub fn reset_alloc_stats(&mut self) {
        self.pool.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_releases_in_slot_order() {
        let mut b = WaitBuffer::new();
        b.push(1, 5, "f");
        b.push(1, 2, "c");
        b.push(1, 9, "j");
        let out = b.commit(1);
        assert_eq!(out, vec![(2, "c"), (5, "f"), (9, "j")]);
        assert!(b.is_empty());
    }

    #[test]
    fn versions_are_isolated() {
        let mut b = WaitBuffer::new();
        b.push(1, 0, 10);
        b.push(2, 0, 20);
        assert_eq!(b.len_of(1), 1);
        assert_eq!(b.len_of(2), 1);
        assert_eq!(b.abort(1), 1);
        assert_eq!(b.len_of(1), 0);
        assert_eq!(b.commit(2), vec![(0, 20)]);
    }

    #[test]
    fn replace_same_slot() {
        let mut b = WaitBuffer::new();
        assert_eq!(b.push(1, 3, "old"), None);
        assert_eq!(b.push(1, 3, "new"), Some("old"));
        assert_eq!(b.commit(1), vec![(3, "new")]);
    }

    #[test]
    fn commit_or_abort_of_unknown_version_is_empty() {
        let mut b: WaitBuffer<u8> = WaitBuffer::new();
        assert!(b.commit(7).is_empty());
        assert_eq!(b.abort(7), 0);
    }

    #[test]
    fn stats_track_buffered_and_discarded() {
        let mut b = WaitBuffer::new();
        b.push(1, 0, ());
        b.push(1, 1, ());
        b.push(2, 0, ());
        b.abort(1);
        assert_eq!(b.stats(), (3, 2));
        b.commit(2);
        assert_eq!(b.stats(), (3, 2));
    }

    #[test]
    fn slots_listing() {
        let mut b = WaitBuffer::new();
        b.push(4, 8, ());
        b.push(4, 1, ());
        assert_eq!(b.slots_of(4), vec![1, 8]);
        assert_eq!(b.slots_of(5), Vec::<u64>::new());
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn commit_into_appends_and_recycles_storage() {
        let mut b = WaitBuffer::new();
        b.push(1, 2, "b");
        b.push(1, 0, "a");
        let mut out = vec![(u64::MAX, "sentinel")];
        b.commit_into(1, &mut out);
        assert_eq!(out, vec![(u64::MAX, "sentinel"), (0, "a"), (2, "b")]);
        // The freed vector is pooled: the next version reuses it.
        b.push(2, 0, "c");
        assert_eq!(b.alloc_stats().reuses, 1);
    }

    #[test]
    fn steady_state_buffering_allocates_nothing() {
        let mut b = WaitBuffer::new();
        // Warm-up: one committed and one aborted version seed the pool.
        b.push(1, 0, 0u32);
        b.push(2, 0, 0u32);
        b.commit(1);
        b.abort(2);
        b.reset_alloc_stats();
        let mut out = Vec::with_capacity(4);
        for v in 3..100u32 {
            b.push(v, 1, v);
            b.push(v, 0, v);
            out.clear();
            b.commit_into(v, &mut out);
            assert_eq!(out.len(), 2);
        }
        assert_eq!(b.alloc_stats().heap_allocs, 0);
    }
}
