//! Speculation version lifecycle.
//!
//! Every speculative value installed into the pipeline gets a fresh,
//! monotonically increasing version. Tasks derived from it are tagged with
//! that version (the SRE deletes/flags them wholesale on rollback), and the
//! wait buffer partitions speculative outputs by it.

use tvs_sre::SpecVersion;

/// Lifecycle state of one speculation version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VersionState {
    /// Prediction requested, value not yet installed.
    Pending,
    /// Value installed; speculative tasks may run under this version.
    Active,
    /// Rolled back; all artefacts discarded.
    Aborted,
    /// Validated against the final value and committed.
    Committed,
}

/// Allocates versions and tracks their states with checked transitions.
///
/// Versions are dense (1, 2, 3, …), so records live in a flat slab indexed
/// by `version - 1` rather than a hash map: state lookups are a bounds
/// check plus an array read, and allocation is an amortized-constant `Vec`
/// push — no per-version hashing or rehash spikes on the speculation hot
/// path. Terminal states stay queryable for the run's lifetime, which the
/// rollback bookkeeping relies on.
#[derive(Debug, Default)]
pub struct VersionTracker {
    /// Slab of `(state, basis)` records; version `v` lives at `v - 1`.
    records: Vec<(VersionState, u64)>,
}

impl VersionTracker {
    /// An empty tracker; versions start at 1 (0 is never issued, so it can
    /// serve as a sentinel in application code).
    pub fn new() -> Self {
        VersionTracker {
            records: Vec::new(),
        }
    }

    fn slot(&self, v: SpecVersion) -> Option<usize> {
        (v >= 1 && (v as usize) <= self.records.len()).then(|| v as usize - 1)
    }

    /// Allocate a fresh `Pending` version, recording the basis event count
    /// its prediction is based on.
    pub fn allocate(&mut self, basis: u64) -> SpecVersion {
        self.records.push((VersionState::Pending, basis));
        self.records.len() as SpecVersion
    }

    /// Mark a pending version active (its predicted value was installed).
    ///
    /// Returns `false` (no-op) if the version was aborted in the meantime —
    /// the predictor lost the race against a rollback.
    pub fn activate(&mut self, v: SpecVersion) -> bool {
        let state = self.slot(v).map(|i| &mut self.records[i].0);
        match state {
            Some(s @ VersionState::Pending) => {
                *s = VersionState::Active;
                true
            }
            Some(VersionState::Aborted) => false,
            other => panic!("activate({v}): invalid state {:?}", other.map(|s| *s)),
        }
    }

    /// Abort a pending or active version. Idempotent. Panics when aborting
    /// a committed version — commits are final.
    pub fn abort(&mut self, v: SpecVersion) {
        match self.slot(v).map(|i| &mut self.records[i].0) {
            Some(s @ (VersionState::Pending | VersionState::Active)) => *s = VersionState::Aborted,
            Some(VersionState::Aborted) => {}
            Some(VersionState::Committed) => panic!("abort({v}): version already committed"),
            None => panic!("abort({v}): unknown version"),
        }
    }

    /// Commit an active version. Panics unless currently active.
    pub fn commit(&mut self, v: SpecVersion) {
        let state = self.slot(v).map(|i| &mut self.records[i].0);
        match state {
            Some(s @ VersionState::Active) => *s = VersionState::Committed,
            other => panic!("commit({v}): invalid state {:?}", other.map(|s| *s)),
        }
    }

    /// Current state, if the version exists.
    pub fn state(&self, v: SpecVersion) -> Option<VersionState> {
        self.slot(v).map(|i| self.records[i].0)
    }

    /// Basis event count the version was predicted from.
    pub fn basis_of(&self, v: SpecVersion) -> Option<u64> {
        self.slot(v).map(|i| self.records[i].1)
    }

    /// Number of versions ever allocated.
    pub fn allocated(&self) -> u64 {
        self.records.len() as u64
    }

    /// Count of versions currently in the given state.
    pub fn count_in(&self, state: VersionState) -> usize {
        self.records.iter().filter(|&&(s, _)| s == state).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_are_monotone_and_start_at_one() {
        let mut t = VersionTracker::new();
        let a = t.allocate(0);
        let b = t.allocate(3);
        assert_eq!(a, 1);
        assert_eq!(b, 2);
        assert_eq!(t.allocated(), 2);
        assert_eq!(t.basis_of(a), Some(0));
        assert_eq!(t.basis_of(b), Some(3));
    }

    #[test]
    fn happy_path_lifecycle() {
        let mut t = VersionTracker::new();
        let v = t.allocate(5);
        assert_eq!(t.state(v), Some(VersionState::Pending));
        assert!(t.activate(v));
        assert_eq!(t.state(v), Some(VersionState::Active));
        t.commit(v);
        assert_eq!(t.state(v), Some(VersionState::Committed));
    }

    #[test]
    fn abort_path_and_idempotence() {
        let mut t = VersionTracker::new();
        let v = t.allocate(0);
        t.abort(v);
        t.abort(v); // idempotent
        assert_eq!(t.state(v), Some(VersionState::Aborted));
        // Late activation loses the race gracefully.
        assert!(!t.activate(v));
        assert_eq!(t.state(v), Some(VersionState::Aborted));
    }

    #[test]
    fn abort_active_version() {
        let mut t = VersionTracker::new();
        let v = t.allocate(0);
        t.activate(v);
        t.abort(v);
        assert_eq!(t.state(v), Some(VersionState::Aborted));
    }

    #[test]
    #[should_panic(expected = "already committed")]
    fn abort_after_commit_panics() {
        let mut t = VersionTracker::new();
        let v = t.allocate(0);
        t.activate(v);
        t.commit(v);
        t.abort(v);
    }

    #[test]
    #[should_panic(expected = "invalid state")]
    fn commit_pending_panics() {
        let mut t = VersionTracker::new();
        let v = t.allocate(0);
        t.commit(v);
    }

    #[test]
    #[should_panic(expected = "unknown version")]
    fn abort_unknown_panics() {
        let mut t = VersionTracker::new();
        t.abort(42);
    }

    #[test]
    fn state_counting() {
        let mut t = VersionTracker::new();
        let a = t.allocate(0);
        let b = t.allocate(1);
        let c = t.allocate(2);
        t.activate(a);
        t.abort(b);
        assert_eq!(t.count_in(VersionState::Active), 1);
        assert_eq!(t.count_in(VersionState::Aborted), 1);
        assert_eq!(t.count_in(VersionState::Pending), 1);
        assert_eq!(t.state(c), Some(VersionState::Pending));
    }
}
