//! Generation-indexed arena allocation for the speculation hot path.
//!
//! The speculation manager's per-block state — speculative version records,
//! undo-journal entry lists, wait-buffer slots — is small, short-lived and
//! allocated at block rate. Heap-allocating it per block puts `malloc` on
//! the paper's critical path; the structures here recycle storage instead,
//! so that in steady state (after the first few blocks warm the pools) the
//! speculation manager performs **zero** per-block heap allocation.
//!
//! Two building blocks:
//!
//! * [`Arena<T>`] — a slab of slots addressed by [`Handle`]s that carry a
//!   **generation** counter. Freeing a slot bumps its generation, so a
//!   stale handle kept across a recycle can never alias the new occupant
//!   (the classic ABA hazard of index-based allocation);
//! * [`ScratchPool<T>`] — a recycler for `Vec<T>` scratch buffers (journal
//!   entry lists, wait-buffer slot lists): buffers are returned cleared but
//!   with their capacity intact.
//!
//! Both count the heap allocations they could not avoid ([`AllocStats`]),
//! which is what `tvs-bench` reports as `allocs_per_block` — the ISSUE's
//! steady-state target is 0.

/// A generation-tagged reference to an [`Arena`] slot.
///
/// Handles are `Copy` and intentionally easy to store in maps and journals;
/// the generation makes a handle held across `free`+`alloc` of the same
/// slot resolve to `None` instead of the new occupant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Handle {
    index: u32,
    gen: u32,
}

impl Handle {
    /// Slot index (stable for the life of the allocation).
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Generation the slot had when this handle was issued.
    pub fn generation(&self) -> u32 {
        self.gen
    }
}

/// Heap-allocation counters for an arena or pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Allocations that had to touch the heap (new slot / new buffer).
    pub heap_allocs: u64,
    /// Allocations served by recycling a previously freed slot or buffer.
    pub reuses: u64,
}

impl AllocStats {
    /// Sum of both counters — total allocation requests served.
    pub fn total(&self) -> u64 {
        self.heap_allocs + self.reuses
    }
}

struct Slot<T> {
    gen: u32,
    val: Option<T>,
}

/// A generation-indexed slab allocator.
///
/// Slots freed with [`Arena::free`] go on a free list and are reused by the
/// next [`Arena::alloc`]; the slot's generation is bumped on free so stale
/// handles die rather than dangle.
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    stats: AllocStats,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for Arena<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Arena")
            .field("live", &self.len())
            .field("slots", &self.slots.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl<T> Arena<T> {
    /// An empty arena.
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
            stats: AllocStats::default(),
        }
    }

    /// An empty arena with room for `cap` live values before any slot
    /// allocation touches the heap.
    pub fn with_capacity(cap: usize) -> Self {
        Arena {
            slots: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
            stats: AllocStats::default(),
        }
    }

    /// Store `val`, returning a handle to it.
    pub fn alloc(&mut self, val: T) -> Handle {
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            debug_assert!(slot.val.is_none(), "free slot holds a value");
            slot.val = Some(val);
            self.stats.reuses += 1;
            Handle {
                index,
                gen: slot.gen,
            }
        } else {
            let index = u32::try_from(self.slots.len()).expect("arena slot count fits u32");
            self.slots.push(Slot {
                gen: 0,
                val: Some(val),
            });
            self.stats.heap_allocs += 1;
            Handle { index, gen: 0 }
        }
    }

    /// The value behind `h`, or `None` if it was freed (or the slot was
    /// since recycled — the generation check).
    pub fn get(&self, h: Handle) -> Option<&T> {
        let slot = self.slots.get(h.index as usize)?;
        if slot.gen != h.gen {
            return None;
        }
        slot.val.as_ref()
    }

    /// Mutable access to the value behind `h`; `None` on stale handles.
    pub fn get_mut(&mut self, h: Handle) -> Option<&mut T> {
        let slot = self.slots.get_mut(h.index as usize)?;
        if slot.gen != h.gen {
            return None;
        }
        slot.val.as_mut()
    }

    /// Free the slot behind `h`, returning its value. Stale or
    /// already-freed handles return `None` and change nothing.
    pub fn free(&mut self, h: Handle) -> Option<T> {
        let slot = self.slots.get_mut(h.index as usize)?;
        if slot.gen != h.gen {
            return None;
        }
        let val = slot.val.take()?;
        // Bump the generation on free: any surviving copy of `h` is now
        // permanently stale, even after this slot is reused.
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(h.index);
        Some(val)
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// `true` when no value is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Allocation counters since construction (or the last
    /// [`Arena::reset_stats`]).
    pub fn stats(&self) -> AllocStats {
        self.stats
    }

    /// Zero the allocation counters (used by benches to measure the warm
    /// steady state separately from pool warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = AllocStats::default();
    }
}

/// A recycler for `Vec<T>` scratch buffers.
///
/// [`ScratchPool::take`] hands out an empty vector — recycled with its old
/// capacity when one is pooled, freshly allocated (and counted) otherwise.
/// [`ScratchPool::put`] clears a vector and shelves it for reuse.
pub struct ScratchPool<T> {
    spare: Vec<Vec<T>>,
    stats: AllocStats,
}

impl<T> Default for ScratchPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for ScratchPool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScratchPool")
            .field("idle", &self.spare.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl<T> ScratchPool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        ScratchPool {
            spare: Vec::new(),
            stats: AllocStats::default(),
        }
    }

    /// An empty vector, recycled if possible.
    pub fn take(&mut self) -> Vec<T> {
        match self.spare.pop() {
            Some(v) => {
                debug_assert!(v.is_empty());
                self.stats.reuses += 1;
                v
            }
            None => {
                self.stats.heap_allocs += 1;
                Vec::new()
            }
        }
    }

    /// Return a vector to the pool; its elements are dropped, its capacity
    /// kept.
    pub fn put(&mut self, mut v: Vec<T>) {
        v.clear();
        self.spare.push(v);
    }

    /// Buffers currently shelved.
    pub fn idle(&self) -> usize {
        self.spare.len()
    }

    /// Allocation counters since construction (or the last
    /// [`ScratchPool::reset_stats`]).
    pub fn stats(&self) -> AllocStats {
        self.stats
    }

    /// Zero the allocation counters.
    pub fn reset_stats(&mut self) {
        self.stats = AllocStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_get_free_round_trip() {
        let mut a = Arena::new();
        let h1 = a.alloc("one");
        let h2 = a.alloc("two");
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(h1), Some(&"one"));
        assert_eq!(a.get(h2), Some(&"two"));
        *a.get_mut(h1).unwrap() = "uno";
        assert_eq!(a.free(h1), Some("uno"));
        assert_eq!(a.get(h1), None);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn double_free_is_a_no_op() {
        let mut a = Arena::new();
        let h = a.alloc(1u32);
        assert_eq!(a.free(h), Some(1));
        assert_eq!(a.free(h), None);
        assert_eq!(a.len(), 0);
    }

    #[test]
    fn generation_reuse_aba_regression() {
        // The ABA scenario: free a slot, let a new allocation reuse it, and
        // make sure the *stale* handle neither reads nor frees the new
        // occupant. This is exactly the bug class a bare index would have.
        let mut a = Arena::new();
        let stale = a.alloc("old");
        assert_eq!(a.free(stale), Some("old"));
        let fresh = a.alloc("new");
        assert_eq!(fresh.index(), stale.index(), "slot is reused");
        assert_ne!(fresh.generation(), stale.generation());
        assert_eq!(a.get(stale), None, "stale read must miss");
        assert_eq!(a.get_mut(stale), None);
        assert_eq!(a.free(stale), None, "stale free must be rejected");
        assert_eq!(a.get(fresh), Some(&"new"), "fresh handle unaffected");
        // And across many recycles of the same slot:
        let mut prev = fresh;
        for i in 0..100u32 {
            assert_eq!(a.free(prev), Some("new"));
            let h = a.alloc("new");
            assert_eq!(h.index(), prev.index());
            assert_eq!(a.get(prev), None, "round {i}");
            prev = h;
        }
    }

    #[test]
    fn steady_state_allocs_reach_zero() {
        let mut a = Arena::new();
        // Warm-up: first allocations must touch the heap.
        let hs: Vec<Handle> = (0..8).map(|i| a.alloc(i)).collect();
        assert_eq!(a.stats().heap_allocs, 8);
        for h in hs {
            a.free(h);
        }
        a.reset_stats();
        // Steady state: churn at the same high-water mark is all reuse.
        for round in 0..50 {
            let hs: Vec<Handle> = (0..8).map(|i| a.alloc(i)).collect();
            for h in hs {
                a.free(h);
            }
            assert_eq!(a.stats().heap_allocs, 0, "round {round}");
        }
        assert_eq!(a.stats().reuses, 50 * 8);
    }

    #[test]
    fn scratch_pool_recycles_capacity() {
        let mut p: ScratchPool<u64> = ScratchPool::new();
        let mut v = p.take();
        assert_eq!(p.stats().heap_allocs, 1);
        v.extend(0..1000);
        let cap = v.capacity();
        p.put(v);
        let v2 = p.take();
        assert!(v2.is_empty());
        assert_eq!(v2.capacity(), cap, "capacity survives the pool");
        assert_eq!(p.stats().reuses, 1);
    }
}
