//! Reversible speculative side effects — the paper's proposed extension.
//!
//! "Keeping speculative tasks free of side effects simplifies rollback ...
//! Note that our framework can be extended to support user-defined rollback
//! routines, to enable more tasks to execute speculatively." (§II-A)
//!
//! Where the [`WaitBuffer`](crate::buffer::WaitBuffer) *defers* effects
//! until commit, the [`UndoLog`] lets speculative tasks apply effects
//! immediately and journals how to reverse them: commit discards the
//! journal (effects stand), abort replays it backwards. [`JournaledCell`]
//! packages the common case of speculatively-overwritten state.

use crate::arena::{AllocStats, ScratchPool};
use tvs_metrics::{Counter, MetricsHub};
use tvs_sre::{FaultInjector, FaultKind, FaultSite, SpecVersion};
use tvs_trace::{EventKind, Tracer};

/// An entry that knows how to reverse itself.
pub trait Undo {
    /// Reverse the recorded effect.
    fn undo(self);
}

impl<F: FnOnce()> Undo for F {
    fn undo(self) {
        self()
    }
}

/// A per-version journal of reversible effects.
///
/// Journals live in a small linear `version → Vec<E>` map whose entry
/// vectors are recycled through a [`ScratchPool`]: once the pool is warm,
/// recording, committing and aborting versions touches the heap only when
/// a journal outgrows every capacity seen before.
pub struct UndoLog<E: Undo> {
    journal: Vec<(SpecVersion, Vec<E>)>,
    pool: ScratchPool<E>,
    committed: u64,
    undone: u64,
    tracer: Tracer,
    metrics: MetricsHub,
    faults: FaultInjector,
}

impl<E: Undo> Default for UndoLog<E> {
    fn default() -> Self {
        UndoLog {
            journal: Vec::new(),
            pool: ScratchPool::new(),
            committed: 0,
            undone: 0,
            tracer: Tracer::disabled(),
            metrics: MetricsHub::disabled(),
            faults: FaultInjector::disabled(),
        }
    }
}

impl<E: Undo> UndoLog<E> {
    /// An empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Emit an undo-replay event to `tracer`'s control ring whenever an
    /// abort actually replays journal entries.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Feed [`Counter::UndoReplays`] (one per journal entry replayed by an
    /// abort) into `metrics`' control shard — the journal is mutated under
    /// its host's routing lock, matching the control shard's single-writer
    /// discipline.
    pub fn set_metrics(&mut self, metrics: MetricsHub) {
        self.metrics = metrics;
    }

    /// Inject faults at the `UndoJournal` site: a drawn `Stall` delays the
    /// replay of an abort (modelling slow reversal I/O), which chaos tests
    /// use to widen the window in which a second abort can land mid-
    /// rollback. Correctness must not depend on replay being fast.
    pub fn set_fault_injector(&mut self, faults: FaultInjector) {
        self.faults = faults;
    }

    /// Record the reversal for an effect just applied under `version`.
    pub fn record(&mut self, version: SpecVersion, entry: E) {
        match self.journal.iter_mut().find(|(v, _)| *v == version) {
            Some((_, entries)) => entries.push(entry),
            None => {
                let mut entries = self.pool.take();
                entries.push(entry);
                self.journal.push((version, entries));
            }
        }
    }

    /// Detach `version`'s journal, if any.
    fn remove(&mut self, version: SpecVersion) -> Option<Vec<E>> {
        let i = self.journal.iter().position(|(v, _)| *v == version)?;
        Some(self.journal.swap_remove(i).1)
    }

    /// Commit `version`: its effects stand; the journal is discarded.
    /// Returns the number of entries released.
    pub fn commit(&mut self, version: SpecVersion) -> usize {
        let n = match self.remove(version) {
            Some(entries) => {
                let n = entries.len();
                self.pool.put(entries); // drops the reversals unrun
                n
            }
            None => 0,
        };
        self.committed += n as u64;
        n
    }

    /// Abort `version`: replay its journal in reverse (LIFO) order —
    /// later effects are reversed first, as nested state changes require.
    /// Returns the number of entries undone.
    pub fn abort(&mut self, version: SpecVersion) -> usize {
        if let Some(FaultKind::Stall { us }) = self.faults.draw(FaultSite::UndoJournal) {
            std::thread::sleep(std::time::Duration::from_micros(us));
        }
        let mut entries = self.remove(version).unwrap_or_default();
        let n = entries.len();
        for e in entries.drain(..).rev() {
            e.undo();
        }
        self.pool.put(entries);
        self.undone += n as u64;
        if n > 0 {
            self.metrics.add_control(Counter::UndoReplays, n as u64);
            self.tracer.emit_control(EventKind::UndoReplay {
                version,
                entries: n as u64,
            });
        }
        n
    }

    /// Entries currently journalled for `version`.
    pub fn len_of(&self, version: SpecVersion) -> usize {
        self.journal
            .iter()
            .find(|(v, _)| *v == version)
            .map(|(_, entries)| entries.len())
            .unwrap_or(0)
    }

    /// `(committed, undone)` lifetime counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.committed, self.undone)
    }

    /// Heap-allocation counters of the internal journal pool.
    pub fn alloc_stats(&self) -> AllocStats {
        self.pool.stats()
    }

    /// Zero the internal pool's allocation counters (bench warm-up).
    pub fn reset_alloc_stats(&mut self) {
        self.pool.reset_stats();
    }
}

/// A value that speculative tasks may overwrite in place, with version-
/// scoped restore-on-abort.
///
/// A cell remembers, per version, the value it held before that version's
/// *first* write; aborting restores it, committing forgets it. Writes from
/// at most one speculative version may be outstanding at a time (matching
/// the engine's one-active-speculation discipline); interleaving two
/// versions' writes is a caller bug and panics.
#[derive(Debug)]
pub struct JournaledCell<T: Clone> {
    value: T,
    saved: Option<(SpecVersion, T)>,
}

impl<T: Clone> JournaledCell<T> {
    /// A cell holding `value`.
    pub fn new(value: T) -> Self {
        JournaledCell { value, saved: None }
    }

    /// Current (possibly speculative) value.
    pub fn get(&self) -> &T {
        &self.value
    }

    /// Non-speculative write: only legal with no speculation outstanding.
    pub fn set(&mut self, value: T) {
        assert!(
            self.saved.is_none(),
            "non-speculative write during speculation"
        );
        self.value = value;
    }

    /// Speculative write under `version`.
    pub fn set_speculative(&mut self, version: SpecVersion, value: T) {
        match &self.saved {
            None => self.saved = Some((version, self.value.clone())),
            Some((v, _)) => assert_eq!(
                *v, version,
                "interleaved speculative writers ({v} and {version})"
            ),
        }
        self.value = value;
    }

    /// Commit `version`'s writes (no-op if it never wrote here).
    pub fn commit(&mut self, version: SpecVersion) {
        if let Some((v, _)) = &self.saved {
            if *v == version {
                self.saved = None;
            }
        }
    }

    /// Abort `version`'s writes, restoring the pre-speculation value
    /// (no-op if it never wrote here).
    pub fn abort(&mut self, version: SpecVersion) {
        if let Some((v, _)) = &self.saved {
            if *v == version {
                let (_, old) = self.saved.take().expect("just checked");
                self.value = old;
            }
        }
    }

    /// Whether a speculative write is outstanding.
    pub fn is_speculative(&self) -> bool {
        self.saved.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn abort_replays_in_reverse_order() {
        let order = Rc::new(RefCell::new(Vec::new()));
        let mut log: UndoLog<Box<dyn FnOnce()>> = UndoLog::new();
        for i in 0..3 {
            let order = Rc::clone(&order);
            log.record(1, Box::new(move || order.borrow_mut().push(i)));
        }
        assert_eq!(log.len_of(1), 3);
        assert_eq!(log.abort(1), 3);
        assert_eq!(*order.borrow(), vec![2, 1, 0], "LIFO undo");
        assert_eq!(log.stats(), (0, 3));
    }

    #[test]
    fn commit_discards_without_running() {
        let ran = Rc::new(RefCell::new(false));
        let mut log: UndoLog<Box<dyn FnOnce()>> = UndoLog::new();
        let ran2 = Rc::clone(&ran);
        log.record(2, Box::new(move || *ran2.borrow_mut() = true));
        assert_eq!(log.commit(2), 1);
        assert!(!*ran.borrow(), "commit must not execute reversals");
        assert_eq!(log.stats(), (1, 0));
    }

    #[test]
    fn versions_are_isolated() {
        let hits = Rc::new(RefCell::new(Vec::new()));
        let mut log: UndoLog<Box<dyn FnOnce()>> = UndoLog::new();
        for v in [1u32, 2, 1, 2] {
            let hits = Rc::clone(&hits);
            log.record(v, Box::new(move || hits.borrow_mut().push(v)));
        }
        log.abort(2);
        assert_eq!(*hits.borrow(), vec![2, 2]);
        log.commit(1);
        assert_eq!(*hits.borrow(), vec![2, 2], "committed entries never run");
    }

    #[test]
    fn stalled_replay_still_reverses_correctly() {
        use tvs_sre::FaultPlan;
        let mut log: UndoLog<Box<dyn FnOnce()>> = UndoLog::new();
        log.set_fault_injector(FaultInjector::new(FaultPlan::new(5).with_rule(
            FaultSite::UndoJournal,
            FaultKind::Stall { us: 500 },
            1.0,
        )));
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3 {
            let order = Rc::clone(&order);
            log.record(1, Box::new(move || order.borrow_mut().push(i)));
        }
        assert_eq!(log.abort(1), 3, "stall delays, never drops, the replay");
        assert_eq!(*order.borrow(), vec![2, 1, 0]);
    }

    #[test]
    fn unknown_version_is_noop() {
        let mut log: UndoLog<Box<dyn FnOnce()>> = UndoLog::new();
        assert_eq!(log.abort(9), 0);
        assert_eq!(log.commit(9), 0);
    }

    #[test]
    fn journaled_cell_abort_restores() {
        let mut cell = JournaledCell::new(10);
        cell.set_speculative(1, 20);
        cell.set_speculative(1, 30);
        assert_eq!(*cell.get(), 30);
        assert!(cell.is_speculative());
        cell.abort(1);
        assert_eq!(*cell.get(), 10, "restore the pre-speculation value");
        assert!(!cell.is_speculative());
    }

    #[test]
    fn journaled_cell_commit_keeps() {
        let mut cell = JournaledCell::new("base".to_string());
        cell.set_speculative(4, "spec".into());
        cell.commit(4);
        assert_eq!(cell.get(), "spec");
        // Post-commit, plain writes are legal again.
        cell.set("next".into());
        assert_eq!(cell.get(), "next");
    }

    #[test]
    fn journaled_cell_foreign_version_noop() {
        let mut cell = JournaledCell::new(1);
        cell.set_speculative(7, 2);
        cell.abort(8); // different version: nothing happens
        assert_eq!(*cell.get(), 2);
        cell.commit(8);
        assert!(cell.is_speculative());
        cell.abort(7);
        assert_eq!(*cell.get(), 1);
    }

    #[test]
    #[should_panic(expected = "interleaved speculative writers")]
    fn journaled_cell_rejects_interleaving() {
        let mut cell = JournaledCell::new(0);
        cell.set_speculative(1, 1);
        cell.set_speculative(2, 2);
    }

    #[test]
    #[should_panic(expected = "non-speculative write during speculation")]
    fn journaled_cell_rejects_mixed_writes() {
        let mut cell = JournaledCell::new(0);
        cell.set_speculative(1, 1);
        cell.set(2);
    }

    #[test]
    fn integrates_with_manager_rollback_hook() {
        use crate::frequency::{SpeculationSchedule, VerificationPolicy};
        use crate::manager::SpeculationManager;
        use crate::validate::CheckResult;
        use std::sync::{Arc, Mutex};

        // Shared undo journal driven by the manager's rollback hook — the
        // paper's "user-defined rollback routines" wired end to end.
        type SharedLog = Arc<Mutex<UndoLog<Box<dyn FnOnce() + Send>>>>;
        let log: SharedLog = Arc::new(Mutex::new(UndoLog::new()));
        let state = Arc::new(Mutex::new(0i64));

        let mut mgr: SpeculationManager<i64> =
            SpeculationManager::new(SpeculationSchedule::with_step(1), VerificationPolicy::Full);
        let log2 = Arc::clone(&log);
        mgr.set_rollback_hook(move |v| {
            log2.lock().unwrap().abort(v);
        });

        mgr.on_basis(1);
        mgr.install_prediction(1, 42);
        // A "speculative task with side effects": apply and journal.
        {
            let mut st = state.lock().unwrap();
            let old = *st;
            *st = 42;
            let state2 = Arc::clone(&state);
            log.lock().unwrap().record(
                1,
                Box::new(move || {
                    *state2.lock().unwrap() = old;
                }),
            );
        }
        assert_eq!(*state.lock().unwrap(), 42);
        // The check fails: the hook must restore the state.
        mgr.on_basis(2);
        mgr.on_check_result(1, CheckResult::fail(9.0), None);
        assert_eq!(
            *state.lock().unwrap(),
            0,
            "rollback hook reversed the effect"
        );
    }
}
