//! The four-point programmer interface.
//!
//! "In order to introduce value speculation to a streaming application, the
//! programmer provides the following four details to our programming
//! environment: 1) what to speculate [...] 2) how to speculate [...]
//! 3) where (not) to speculate [...] 4) how to validate speculations."
//!
//! [`SpeculationBuilder`] captures exactly those four details (plus the
//! frequency knobs of §II-B) and produces a [`SpeculationPlan`] from which
//! a configured [`SpeculationManager`](crate::manager::SpeculationManager)
//! is made. The paper notes this interface "can be supported by a compiler
//! through the introduction of keywords in high-level languages, or simply
//! through the addition of API functions" — this is the API-function form.

use crate::frequency::{SpeculationSchedule, VerificationPolicy};
use crate::manager::SpeculationManager;
use crate::validate::Tolerance;

/// A complete speculation configuration for one DFG edge.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeculationPlan {
    /// (1) *what*: the DFG edge whose value is speculated, e.g.
    /// `"global-histogram -> tree"`.
    pub edge: &'static str,
    /// (2) *how*: the source of approximate data, e.g.
    /// `"partial reduce outcomes"`.
    pub source: &'static str,
    /// (3) *where (not)*: the side-effect barrier at which speculative
    /// data waits, e.g. `"output store"`.
    pub barrier: &'static str,
    /// (4) *how to validate*: the tolerance margin for the comparison task.
    pub tolerance: Tolerance,
    /// Speculation frequency (step size).
    pub schedule: SpeculationSchedule,
    /// Verification frequency.
    pub verification: VerificationPolicy,
}

impl SpeculationPlan {
    /// Instantiate the engine for this plan.
    pub fn manager<T>(&self) -> SpeculationManager<T> {
        SpeculationManager::new(self.schedule, self.verification)
    }
}

/// Error from [`SpeculationBuilder::build`]: a required detail is missing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissingDetail(pub &'static str);

impl std::fmt::Display for MissingDetail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "speculation plan is missing detail: {}", self.0)
    }
}

impl std::error::Error for MissingDetail {}

/// Builder for a [`SpeculationPlan`].
#[derive(Debug, Default, Clone)]
pub struct SpeculationBuilder {
    edge: Option<&'static str>,
    source: Option<&'static str>,
    barrier: Option<&'static str>,
    tolerance: Option<Tolerance>,
    schedule: SpeculationSchedule,
    verification: VerificationPolicy,
}

impl Default for SpeculationSchedule {
    fn default() -> Self {
        SpeculationSchedule { step: 8 }
    }
}

impl Default for VerificationPolicy {
    fn default() -> Self {
        VerificationPolicy::baseline()
    }
}

impl SpeculationBuilder {
    /// An empty builder with the paper's baseline frequencies.
    pub fn new() -> Self {
        Self::default()
    }

    /// (1) what: the speculated edge.
    pub fn on_edge(mut self, edge: &'static str) -> Self {
        self.edge = Some(edge);
        self
    }

    /// (2) how: the approximate-data source.
    pub fn from_source(mut self, source: &'static str) -> Self {
        self.source = Some(source);
        self
    }

    /// (3) where (not): the side-effect barrier.
    pub fn barrier_at(mut self, barrier: &'static str) -> Self {
        self.barrier = Some(barrier);
        self
    }

    /// (4) how to validate: the tolerance margin.
    pub fn validate_within(mut self, tolerance: Tolerance) -> Self {
        self.tolerance = Some(tolerance);
        self
    }

    /// Speculation frequency (step size).
    pub fn schedule(mut self, schedule: SpeculationSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Verification frequency.
    pub fn verification(mut self, verification: VerificationPolicy) -> Self {
        self.verification = verification;
        self
    }

    /// Produce the plan, verifying all four details are present.
    pub fn build(self) -> Result<SpeculationPlan, MissingDetail> {
        Ok(SpeculationPlan {
            edge: self.edge.ok_or(MissingDetail("what (edge)"))?,
            source: self.source.ok_or(MissingDetail("how (source)"))?,
            barrier: self.barrier.ok_or(MissingDetail("where (barrier)"))?,
            tolerance: self
                .tolerance
                .ok_or(MissingDetail("how to validate (tolerance)"))?,
            schedule: self.schedule,
            verification: self.verification,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_plan_builds() {
        let plan = SpeculationBuilder::new()
            .on_edge("global-histogram -> tree")
            .from_source("partial reduce outcomes")
            .barrier_at("output store")
            .validate_within(Tolerance::percent(1.0))
            .schedule(SpeculationSchedule::with_step(8))
            .verification(VerificationPolicy::EveryKth(8))
            .build()
            .unwrap();
        assert_eq!(plan.edge, "global-histogram -> tree");
        assert_eq!(plan.tolerance, Tolerance::percent(1.0));
        let m: SpeculationManager<u32> = plan.manager();
        assert!(!m.is_done());
    }

    #[test]
    fn missing_details_are_reported() {
        let err = SpeculationBuilder::new().build().unwrap_err();
        assert_eq!(err, MissingDetail("what (edge)"));
        let err = SpeculationBuilder::new().on_edge("e").build().unwrap_err();
        assert_eq!(err, MissingDetail("how (source)"));
        let err = SpeculationBuilder::new()
            .on_edge("e")
            .from_source("s")
            .build()
            .unwrap_err();
        assert_eq!(err, MissingDetail("where (barrier)"));
        let err = SpeculationBuilder::new()
            .on_edge("e")
            .from_source("s")
            .barrier_at("b")
            .build()
            .unwrap_err();
        assert_eq!(err, MissingDetail("how to validate (tolerance)"));
    }

    #[test]
    fn defaults_are_paper_baseline() {
        let b = SpeculationBuilder::new();
        assert_eq!(b.schedule, SpeculationSchedule::with_step(8));
        assert_eq!(b.verification, VerificationPolicy::EveryKth(8));
    }

    #[test]
    fn missing_detail_displays() {
        let e = MissingDetail("what (edge)");
        assert!(e.to_string().contains("what (edge)"));
    }
}
