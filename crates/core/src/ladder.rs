//! The graceful degradation ladder.
//!
//! The circuit breaker (see [`crate::breaker`]) is binary: speculation is
//! either allowed or suppressed. Under *sustained* chaos that is too
//! coarse — a run flapping between full speculation and a tripped breaker
//! wastes work on doomed cascades, while a run that could tolerate capped
//! speculation is pushed all the way to the natural path. The ladder adds
//! the middle rungs: an escalating controller over windowed
//! speculation-outcome observations and breaker trips that degrades
//! service level one step at a time and climbs back up only after a
//! hysteresis period of clean operation.
//!
//! Levels, from healthiest to most degraded:
//!
//! 1. [`DegradationLevel::Full`] — unrestricted speculation.
//! 2. [`DegradationLevel::CappedDepth`] — fresh predictions still start,
//!    but misprediction cascades may not promote candidates deeper than
//!    [`LadderConfig::depth_cap`].
//! 3. [`DegradationLevel::NonSpeculative`] — no new predictions or
//!    promotions; the stream runs on the natural path.
//! 4. [`DegradationLevel::CheckpointPause`] — as above, plus the hosting
//!    workload should persist a checkpoint at every committed-prefix
//!    advance so an operator can stop the run without losing work.
//!
//! Transitions *down* happen when a sampling window closes with a failure
//! ratio at or above [`LadderConfig::trip_ratio`], or immediately when
//! the circuit breaker trips. Transitions *up* require
//! [`LadderConfig::up_windows`] *consecutive* clean windows — the
//! hysteresis that prevents flapping between adjacent levels.

/// Service level of the degradation ladder, healthiest first. The
/// numeric value is exported as the `degradation_level` gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u32)]
pub enum DegradationLevel {
    /// Unrestricted speculation.
    Full = 0,
    /// Speculation with a capped misprediction-cascade depth.
    CappedDepth = 1,
    /// Natural path only: no predictions, no candidate promotions.
    NonSpeculative = 2,
    /// Natural path plus checkpoint-eagerly: persist a snapshot at every
    /// committed-prefix advance so the run can be paused losslessly.
    CheckpointPause = 3,
}

impl DegradationLevel {
    /// All levels, healthiest first.
    pub const ALL: [DegradationLevel; 4] = [
        DegradationLevel::Full,
        DegradationLevel::CappedDepth,
        DegradationLevel::NonSpeculative,
        DegradationLevel::CheckpointPause,
    ];

    /// Numeric gauge value (0 = full … 3 = checkpoint-and-pause).
    pub fn as_u32(self) -> u32 {
        self as u32
    }

    /// One level more degraded (saturating).
    pub fn down(self) -> DegradationLevel {
        match self {
            DegradationLevel::Full => DegradationLevel::CappedDepth,
            DegradationLevel::CappedDepth => DegradationLevel::NonSpeculative,
            DegradationLevel::NonSpeculative | DegradationLevel::CheckpointPause => {
                DegradationLevel::CheckpointPause
            }
        }
    }

    /// One level healthier (saturating).
    pub fn up(self) -> DegradationLevel {
        match self {
            DegradationLevel::Full | DegradationLevel::CappedDepth => DegradationLevel::Full,
            DegradationLevel::NonSpeculative => DegradationLevel::CappedDepth,
            DegradationLevel::CheckpointPause => DegradationLevel::NonSpeculative,
        }
    }

    /// Whether new predictions and candidate promotions may start at all.
    pub fn allows_speculation(self) -> bool {
        self <= DegradationLevel::CappedDepth
    }
}

/// Configuration of the [`DegradationLadder`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderConfig {
    /// Observations per sampling window.
    pub window: u64,
    /// Minimum observations in a window before its failure ratio counts
    /// (a window closing with fewer samples is treated as clean).
    pub min_samples: u64,
    /// A window whose `failures / samples` is at or above this steps the
    /// ladder down one level.
    pub trip_ratio: f64,
    /// Consecutive clean windows required before stepping back *up* one
    /// level — the hysteresis that prevents flapping.
    pub up_windows: u32,
    /// Maximum cascade depth a promoted candidate may reach while the
    /// ladder sits at [`DegradationLevel::CappedDepth`].
    pub depth_cap: u32,
}

impl Default for LadderConfig {
    fn default() -> Self {
        LadderConfig {
            window: 8,
            min_samples: 4,
            trip_ratio: 0.5,
            up_windows: 2,
            depth_cap: 1,
        }
    }
}

/// A level transition: `(from, to)`.
pub type LadderStep = (DegradationLevel, DegradationLevel);

/// The escalating degradation controller (see module docs).
#[derive(Debug)]
pub struct DegradationLadder {
    cfg: LadderConfig,
    level: DegradationLevel,
    window_samples: u64,
    window_failures: u64,
    clean_windows: u32,
    steps: u64,
}

impl DegradationLadder {
    /// A ladder at [`DegradationLevel::Full`].
    pub fn new(cfg: LadderConfig) -> Self {
        DegradationLadder {
            cfg,
            level: DegradationLevel::Full,
            window_samples: 0,
            window_failures: 0,
            clean_windows: 0,
            steps: 0,
        }
    }

    /// Current service level.
    pub fn level(&self) -> DegradationLevel {
        self.level
    }

    /// The configured cascade-depth cap (applies at
    /// [`DegradationLevel::CappedDepth`]).
    pub fn depth_cap(&self) -> u32 {
        self.cfg.depth_cap
    }

    /// Level transitions taken so far (either direction).
    pub fn steps_taken(&self) -> u64 {
        self.steps
    }

    /// Record one speculation outcome (`ok` = check passed or version
    /// committed; `!ok` = rollback, fault or SDC detection). Returns the
    /// transition if closing the window changed the level.
    pub fn observe(&mut self, ok: bool) -> Option<LadderStep> {
        self.window_samples += 1;
        if !ok {
            self.window_failures += 1;
        }
        if self.window_samples < self.cfg.window {
            return None;
        }
        let samples = std::mem::take(&mut self.window_samples);
        let failures = std::mem::take(&mut self.window_failures);
        let degraded = samples >= self.cfg.min_samples.max(1)
            && failures as f64 >= self.cfg.trip_ratio * samples as f64
            && failures > 0;
        if degraded {
            self.clean_windows = 0;
            self.step_down()
        } else {
            self.clean_windows += 1;
            if self.clean_windows >= self.cfg.up_windows.max(1) {
                self.clean_windows = 0;
                self.step_up()
            } else {
                None
            }
        }
    }

    /// The circuit breaker tripped: step down immediately (no need to
    /// wait for the window to close — a trip *is* a closed verdict) and
    /// restart the sampling window so post-trip observations are judged
    /// on their own.
    pub fn on_breaker_trip(&mut self) -> Option<LadderStep> {
        self.window_samples = 0;
        self.window_failures = 0;
        self.clean_windows = 0;
        self.step_down()
    }

    fn step_down(&mut self) -> Option<LadderStep> {
        let from = self.level;
        let to = from.down();
        if from == to {
            return None;
        }
        self.level = to;
        self.steps += 1;
        Some((from, to))
    }

    fn step_up(&mut self) -> Option<LadderStep> {
        let from = self.level;
        let to = from.up();
        if from == to {
            return None;
        }
        self.level = to;
        self.steps += 1;
        Some((from, to))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LadderConfig {
        LadderConfig {
            window: 4,
            min_samples: 2,
            trip_ratio: 0.5,
            up_windows: 2,
            depth_cap: 1,
        }
    }

    fn fail_window(l: &mut DegradationLadder) -> Option<LadderStep> {
        let mut last = None;
        for _ in 0..4 {
            last = l.observe(false).or(last);
        }
        last
    }

    fn clean_window(l: &mut DegradationLadder) -> Option<LadderStep> {
        let mut last = None;
        for _ in 0..4 {
            last = l.observe(true).or(last);
        }
        last
    }

    #[test]
    fn degrades_one_level_per_bad_window() {
        let mut l = DegradationLadder::new(cfg());
        assert_eq!(l.level(), DegradationLevel::Full);
        assert_eq!(
            fail_window(&mut l),
            Some((DegradationLevel::Full, DegradationLevel::CappedDepth))
        );
        assert_eq!(
            fail_window(&mut l),
            Some((
                DegradationLevel::CappedDepth,
                DegradationLevel::NonSpeculative
            ))
        );
        assert_eq!(
            fail_window(&mut l),
            Some((
                DegradationLevel::NonSpeculative,
                DegradationLevel::CheckpointPause
            ))
        );
        // The bottom rung saturates: no further transition.
        assert_eq!(fail_window(&mut l), None);
        assert_eq!(l.level(), DegradationLevel::CheckpointPause);
        assert_eq!(l.steps_taken(), 3);
    }

    #[test]
    fn recovery_requires_consecutive_clean_windows() {
        let mut l = DegradationLadder::new(cfg());
        fail_window(&mut l);
        assert_eq!(l.level(), DegradationLevel::CappedDepth);
        // One clean window is not enough (up_windows = 2)...
        assert_eq!(clean_window(&mut l), None);
        assert_eq!(l.level(), DegradationLevel::CappedDepth);
        // ...two consecutive clean windows step back up.
        assert_eq!(
            clean_window(&mut l),
            Some((DegradationLevel::CappedDepth, DegradationLevel::Full))
        );
    }

    #[test]
    fn a_failure_resets_the_hysteresis_counter() {
        let mut l = DegradationLadder::new(cfg());
        fail_window(&mut l);
        clean_window(&mut l); // clean streak = 1
        fail_window(&mut l); // drops further AND resets the streak
        assert_eq!(l.level(), DegradationLevel::NonSpeculative);
        assert_eq!(clean_window(&mut l), None, "streak restarted from zero");
        assert_eq!(
            clean_window(&mut l).map(|s| s.1),
            Some(DegradationLevel::CappedDepth)
        );
    }

    #[test]
    fn breaker_trip_steps_down_immediately() {
        let mut l = DegradationLadder::new(cfg());
        l.observe(true);
        l.observe(false);
        assert_eq!(
            l.on_breaker_trip(),
            Some((DegradationLevel::Full, DegradationLevel::CappedDepth))
        );
        // The window restarted: the two pre-trip samples are gone, so the
        // next window needs four fresh observations to close.
        for _ in 0..3 {
            assert_eq!(l.observe(true), None);
        }
    }

    #[test]
    fn sparse_windows_count_as_clean() {
        // min_samples = 3: a window with one failure out of 4 samples has
        // ratio 0.25 < 0.5 → clean; but also check few-failure windows
        // below min_samples never degrade.
        let mut l = DegradationLadder::new(LadderConfig {
            window: 2,
            min_samples: 3,
            trip_ratio: 0.5,
            up_windows: 1,
            depth_cap: 1,
        });
        assert_eq!(l.observe(false), None);
        assert_eq!(l.observe(false), None, "window of 2 < min_samples 3");
        assert_eq!(l.level(), DegradationLevel::Full);
    }

    #[test]
    fn level_ordering_and_helpers() {
        assert!(DegradationLevel::Full < DegradationLevel::CheckpointPause);
        assert!(DegradationLevel::Full.allows_speculation());
        assert!(DegradationLevel::CappedDepth.allows_speculation());
        assert!(!DegradationLevel::NonSpeculative.allows_speculation());
        assert!(!DegradationLevel::CheckpointPause.allows_speculation());
        assert_eq!(DegradationLevel::CheckpointPause.as_u32(), 3);
        assert_eq!(DegradationLevel::Full.up(), DegradationLevel::Full);
        assert_eq!(
            DegradationLevel::CheckpointPause.down(),
            DegradationLevel::CheckpointPause
        );
    }
}
