//! Tolerance-based validation.
//!
//! "The programmer defines comparison criteria to validate speculated
//! values." A validator compares the speculated value with a fresher (or
//! final) value and yields a [`CheckResult`]; the margin that separates
//! valid from invalid is the paper's *tolerance*.

/// The outcome of one check-task comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckResult {
    /// Whether the speculation survives.
    pub valid: bool,
    /// The measured relative error (domain-defined; for the Huffman
    /// benchmark, the relative compressed-size excess).
    pub delta: f64,
}

impl CheckResult {
    /// A passing result with the given measured delta.
    pub fn pass(delta: f64) -> Self {
        CheckResult { valid: true, delta }
    }

    /// A failing result with the given measured delta.
    pub fn fail(delta: f64) -> Self {
        CheckResult {
            valid: false,
            delta,
        }
    }
}

/// A tolerance margin: relative error up to `margin` is acceptable.
///
/// The paper's Huffman experiments use 1 % (default), 2 % and 5 % of the
/// compressed size (Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Maximum acceptable relative error, e.g. `0.01` for 1 %.
    pub margin: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance { margin: 0.01 }
    }
}

impl Tolerance {
    /// A tolerance of `percent` per cent.
    pub fn percent(percent: f64) -> Self {
        Tolerance {
            margin: percent / 100.0,
        }
    }

    /// Judge a measured relative error.
    pub fn judge(&self, delta: f64) -> CheckResult {
        CheckResult {
            valid: delta <= self.margin,
            delta,
        }
    }
}

/// Compares a speculated value against a fresher reference value.
///
/// Implementations are *pure* — they run inside side-effect-free check
/// tasks. The Huffman validator (compressed-size comparison over the
/// current global histogram) lives in the pipelines crate; generic
/// numeric validators are provided here.
pub trait Validator<T>: Send + Sync {
    /// Compare `speculated` against `reference`.
    fn check(&self, speculated: &T, reference: &T) -> CheckResult;
}

/// Validates scalar speculations by relative error.
#[derive(Debug, Clone, Copy)]
pub struct RelativeError(pub Tolerance);

impl Validator<f64> for RelativeError {
    fn check(&self, speculated: &f64, reference: &f64) -> CheckResult {
        let denom = reference.abs().max(f64::MIN_POSITIVE);
        self.0.judge((speculated - reference).abs() / denom)
    }
}

/// Validates vector speculations (e.g. filter coefficients) by normalised
/// L2 distance — the tolerance criterion of the paper's iterative-filter
/// example.
#[derive(Debug, Clone, Copy)]
pub struct L2Error(pub Tolerance);

impl Validator<Vec<f64>> for L2Error {
    fn check(&self, speculated: &Vec<f64>, reference: &Vec<f64>) -> CheckResult {
        if speculated.len() != reference.len() {
            return CheckResult::fail(f64::INFINITY);
        }
        let num: f64 = speculated
            .iter()
            .zip(reference)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let den: f64 = reference.iter().map(|b| b * b).sum::<f64>().sqrt();
        self.0.judge(if den == 0.0 { num } else { num / den })
    }
}

/// Wrap a closure as a validator.
pub struct FnValidator<T, F: Fn(&T, &T) -> CheckResult + Send + Sync>(
    pub F,
    std::marker::PhantomData<fn(&T)>,
);

impl<T, F: Fn(&T, &T) -> CheckResult + Send + Sync> FnValidator<T, F> {
    /// Wrap `f`.
    pub fn new(f: F) -> Self {
        FnValidator(f, std::marker::PhantomData)
    }
}

impl<T, F: Fn(&T, &T) -> CheckResult + Send + Sync> Validator<T> for FnValidator<T, F> {
    fn check(&self, speculated: &T, reference: &T) -> CheckResult {
        (self.0)(speculated, reference)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerance_judges_boundary_inclusive() {
        let t = Tolerance::percent(1.0);
        assert!(t.judge(0.0).valid);
        assert!(t.judge(0.01).valid);
        assert!(!t.judge(0.0100001).valid);
    }

    #[test]
    fn default_tolerance_is_one_percent() {
        assert_eq!(Tolerance::default().margin, 0.01);
    }

    #[test]
    fn relative_error_scalar() {
        let v = RelativeError(Tolerance::percent(5.0));
        assert!(v.check(&102.0, &100.0).valid);
        assert!(!v.check(&110.0, &100.0).valid);
        // Sign-symmetric.
        assert!(v.check(&98.0, &100.0).valid);
    }

    #[test]
    fn l2_error_vectors() {
        let v = L2Error(Tolerance::percent(10.0));
        let reference = vec![1.0, 0.0, 0.0];
        assert!(v.check(&vec![1.05, 0.0, 0.0], &reference).valid);
        assert!(!v.check(&vec![1.5, 0.0, 0.0], &reference).valid);
    }

    #[test]
    fn l2_length_mismatch_fails() {
        let v = L2Error(Tolerance::percent(100.0));
        let r = v.check(&vec![1.0], &vec![1.0, 2.0]);
        assert!(!r.valid);
        assert!(r.delta.is_infinite());
    }

    #[test]
    fn l2_zero_reference_uses_absolute_distance() {
        let v = L2Error(Tolerance { margin: 0.5 });
        assert!(v.check(&vec![0.1, 0.2], &vec![0.0, 0.0]).valid);
        assert!(!v.check(&vec![1.0, 1.0], &vec![0.0, 0.0]).valid);
    }

    #[test]
    fn fn_validator_delegates() {
        let v = FnValidator::new(|a: &u32, b: &u32| {
            let delta = (*a as f64 - *b as f64).abs();
            CheckResult {
                valid: a == b,
                delta,
            }
        });
        assert!(v.check(&3, &3).valid);
        let r = v.check(&3, &5);
        assert!(!r.valid);
        assert_eq!(r.delta, 2.0);
    }
}
