//! Committed-prefix checkpointing.
//!
//! A streaming run's durable state is its *committed prefix*: the
//! contiguous run of finalized blocks at the front of the stream, the
//! histogram they contributed, the code table that encoded them, the
//! assembled output bitstream (whose trailing partial byte is the encoder
//! bit-IO carry) and the position the offset chain had reached. A
//! [`StreamSnapshot`] captures exactly that, serialized as one flat JSON
//! line and written atomically (`.tmp-<pid>` + rename, the post-mortem
//! bundle discipline), so a crashed or killed run resumes by re-feeding
//! only the blocks past the prefix — byte-identical to an uninterrupted
//! run, because the committed tree is deterministic for a given prefix
//! and encoding is deterministic given the tree.
//!
//! Deserialization is *total*: truncated, bit-flipped or otherwise
//! mangled snapshot files return a structured [`ResumeError`], never a
//! panic — the recovery path must itself be robust to the disk state a
//! crash leaves behind.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// File name of the current snapshot inside [`CheckpointConfig::dir`].
pub const SNAPSHOT_FILE: &str = "snapshot.json";

/// Schema version written by this build; readers reject newer schemas.
pub const SNAPSHOT_SCHEMA: u64 = 1;

/// Default snapshot cadence in committed blocks — the operating point the
/// checkpoint-overhead budget (≤3 % wall-clock) is enforced at.
pub const DEFAULT_CADENCE: usize = 16;

/// When and where to checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Write a snapshot whenever the committed prefix has advanced by at
    /// least this many blocks since the last write (plus once at the
    /// end). 0 disables cadence-driven writes (a halt still writes).
    pub every_blocks: usize,
    /// Directory the snapshot lands in (created if missing).
    pub dir: PathBuf,
    /// Test/chaos hook: stop the pipeline once this many blocks are
    /// finalized — force-write a snapshot, spawn nothing further and
    /// report finished, simulating a kill at a block boundary.
    pub halt_at_block: Option<usize>,
}

impl CheckpointConfig {
    /// Cadence-`every_blocks` checkpointing into `dir`.
    pub fn new(every_blocks: usize, dir: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            every_blocks,
            dir: dir.into(),
            halt_at_block: None,
        }
    }

    /// [`DEFAULT_CADENCE`] checkpointing into `dir`.
    pub fn at_default_cadence(dir: impl Into<PathBuf>) -> Self {
        Self::new(DEFAULT_CADENCE, dir)
    }

    /// Path of the snapshot file this config writes.
    pub fn snapshot_path(&self) -> PathBuf {
        self.dir.join(SNAPSHOT_FILE)
    }
}

/// Why a snapshot could not be loaded or resumed from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResumeError {
    /// The file could not be read.
    Io(String),
    /// The file ends before the closing brace (interrupted write).
    Truncated,
    /// The snapshot's schema is newer than this build understands.
    BadSchema(u64),
    /// A required field is absent.
    MissingField(&'static str),
    /// A field is present but unparseable (bit flips, hand edits).
    BadField(&'static str),
    /// Cross-field structural invariants do not hold (array lengths vs
    /// the prefix, stream bytes vs the bit length, prefix vs n_blocks).
    LengthMismatch(&'static str),
    /// The snapshot was taken from different input data or a different
    /// pipeline configuration than the resume attempt supplies.
    InputMismatch,
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeError::Io(e) => write!(f, "snapshot io error: {e}"),
            ResumeError::Truncated => write!(f, "snapshot truncated (interrupted write?)"),
            ResumeError::BadSchema(s) => write!(f, "snapshot schema {s} is newer than supported"),
            ResumeError::MissingField(k) => write!(f, "snapshot missing field '{k}'"),
            ResumeError::BadField(k) => write!(f, "snapshot field '{k}' unparseable"),
            ResumeError::LengthMismatch(what) => {
                write!(f, "snapshot internally inconsistent: {what}")
            }
            ResumeError::InputMismatch => {
                write!(f, "snapshot was taken from different input or config")
            }
        }
    }
}

impl std::error::Error for ResumeError {}

/// FNV-1a over a byte slice — the digest used to bind a snapshot to its
/// input data and pipeline configuration.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The exact state needed to resume a committed prefix (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamSnapshot {
    /// FNV-1a digest of the pipeline parameters that shape the output.
    pub config_digest: u64,
    /// FNV-1a digest of the full input byte stream.
    pub input_digest: u64,
    /// Total blocks in the stream.
    pub n_blocks: u64,
    /// Block size the stream was cut with, bytes.
    pub block_bytes: u64,
    /// Committed prefix: blocks `0..prefix` are finalized and assembled
    /// into [`StreamSnapshot::stream_bytes`]; the offset chain resumes at
    /// block `prefix`.
    pub prefix: u64,
    /// Checkpoint cadence the writing run used (for the resume audit).
    pub cadence: u64,
    /// Arrival stamp of each prefix block, µs.
    pub arrivals: Vec<u64>,
    /// Encode-completion stamp of each prefix block, µs.
    pub encoded_at: Vec<u64>,
    /// Encoded size of each prefix block, bits.
    pub bits: Vec<u64>,
    /// Merged byte histogram of the prefix blocks (256 entries).
    pub hist_base: Vec<u64>,
    /// Canonical code lengths of the committed tree (256 entries; empty
    /// when no block was finalized yet and no tree exists).
    pub code_lengths: Vec<u8>,
    /// The speculation version that produced the committed tree (0 when
    /// the tree came from the natural path or none exists).
    pub committed_version: u64,
    /// Assembled prefix bitstream, padded to whole bytes. The trailing
    /// partial byte (if `stream_bit_len % 8 != 0`) is the encoder's
    /// bit-IO carry: resume re-seeds a writer with exactly these bits.
    pub stream_bytes: Vec<u8>,
    /// Exact bit length of the prefix stream.
    pub stream_bit_len: u64,
}

impl StreamSnapshot {
    /// Serialize as one flat JSON line (schema [`SNAPSHOT_SCHEMA`]).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024 + self.stream_bytes.len() * 2);
        let _ = write!(
            s,
            "{{\"schema\":{},\"config_digest\":{},\"input_digest\":{},\"n_blocks\":{},\
             \"block_bytes\":{},\"prefix\":{},\"cadence\":{},\"committed_version\":{},\
             \"stream_bit_len\":{}",
            SNAPSHOT_SCHEMA,
            self.config_digest,
            self.input_digest,
            self.n_blocks,
            self.block_bytes,
            self.prefix,
            self.cadence,
            self.committed_version,
            self.stream_bit_len,
        );
        let _ = write!(s, ",\"arrivals\":\"{}\"", u64_list(&self.arrivals));
        let _ = write!(s, ",\"encoded_at\":\"{}\"", u64_list(&self.encoded_at));
        let _ = write!(s, ",\"bits\":\"{}\"", u64_list(&self.bits));
        let _ = write!(s, ",\"hist_base\":\"{}\"", u64_list(&self.hist_base));
        let _ = write!(s, ",\"code_lengths\":\"{}\"", hex(&self.code_lengths));
        let _ = write!(s, ",\"stream\":\"{}\"}}", hex(&self.stream_bytes));
        s
    }

    /// Total parser for [`StreamSnapshot::to_json`] output: every failure
    /// mode — truncation mid-field, flipped bytes, wrong schema, missing
    /// keys, inconsistent lengths — comes back as a [`ResumeError`].
    pub fn from_json(line: &str) -> Result<Self, ResumeError> {
        let line = line.trim();
        if !line.starts_with('{') {
            return Err(ResumeError::BadField("schema"));
        }
        if !line.ends_with('}') {
            return Err(ResumeError::Truncated);
        }
        let schema = req_u64(line, "schema")?;
        if schema > SNAPSHOT_SCHEMA {
            return Err(ResumeError::BadSchema(schema));
        }
        let snap = StreamSnapshot {
            config_digest: req_u64(line, "config_digest")?,
            input_digest: req_u64(line, "input_digest")?,
            n_blocks: req_u64(line, "n_blocks")?,
            block_bytes: req_u64(line, "block_bytes")?,
            prefix: req_u64(line, "prefix")?,
            cadence: req_u64(line, "cadence")?,
            committed_version: req_u64(line, "committed_version")?,
            stream_bit_len: req_u64(line, "stream_bit_len")?,
            arrivals: req_u64_list(line, "arrivals")?,
            encoded_at: req_u64_list(line, "encoded_at")?,
            bits: req_u64_list(line, "bits")?,
            hist_base: req_u64_list(line, "hist_base")?,
            code_lengths: req_hex(line, "code_lengths")?,
            stream_bytes: req_hex(line, "stream")?,
        };
        snap.validate()?;
        Ok(snap)
    }

    /// Structural invariants a loadable snapshot must satisfy.
    fn validate(&self) -> Result<(), ResumeError> {
        if self.prefix > self.n_blocks {
            return Err(ResumeError::LengthMismatch("prefix exceeds n_blocks"));
        }
        let k = self.prefix as usize;
        if self.arrivals.len() != k || self.encoded_at.len() != k || self.bits.len() != k {
            return Err(ResumeError::LengthMismatch(
                "per-block arrays do not match the prefix",
            ));
        }
        if !self.hist_base.is_empty() && self.hist_base.len() != 256 {
            return Err(ResumeError::LengthMismatch(
                "hist_base must have 256 entries",
            ));
        }
        if !self.code_lengths.is_empty() && self.code_lengths.len() != 256 {
            return Err(ResumeError::LengthMismatch(
                "code_lengths must have 256 entries",
            ));
        }
        if k > 0 && self.code_lengths.is_empty() {
            return Err(ResumeError::LengthMismatch(
                "finalized prefix without a code table",
            ));
        }
        let expect_bytes = (self.stream_bit_len as usize).div_ceil(8);
        if self.stream_bytes.len() != expect_bytes {
            return Err(ResumeError::LengthMismatch(
                "stream bytes do not match the bit length",
            ));
        }
        let bits_total: u64 = self.bits.iter().sum();
        if bits_total != self.stream_bit_len {
            return Err(ResumeError::LengthMismatch(
                "per-block bit counts do not sum to the stream bit length",
            ));
        }
        Ok(())
    }

    /// Write atomically into `cfg.dir` (tmp file + rename). Returns the
    /// snapshot path.
    pub fn write_atomic(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let tmp = dir.join(format!("{SNAPSHOT_FILE}.tmp-{}", std::process::id()));
        std::fs::write(&tmp, self.to_json())?;
        let fin = dir.join(SNAPSHOT_FILE);
        std::fs::rename(&tmp, &fin)?;
        Ok(fin)
    }

    /// Load and parse a snapshot file.
    pub fn load(path: &Path) -> Result<Self, ResumeError> {
        let text = std::fs::read_to_string(path).map_err(|e| ResumeError::Io(e.to_string()))?;
        Self::from_json(&text)
    }

    /// Check that this snapshot matches the input/config digests of a
    /// resume attempt.
    pub fn check_matches(&self, config_digest: u64, input_digest: u64) -> Result<(), ResumeError> {
        if self.config_digest != config_digest || self.input_digest != input_digest {
            return Err(ResumeError::InputMismatch);
        }
        Ok(())
    }
}

fn u64_list(xs: &[u64]) -> String {
    let mut s = String::new();
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{x}");
    }
    s
}

fn hex(bytes: &[u8]) -> String {
    // Table-driven: the snapshot hot path serializes the whole committed
    // stream prefix, and per-byte `write!("{b:02x}")` is ~10x slower.
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut s = Vec::with_capacity(bytes.len() * 2);
    for &b in bytes {
        s.push(DIGITS[(b >> 4) as usize]);
        s.push(DIGITS[(b & 0xf) as usize]);
    }
    String::from_utf8(s).expect("hex digits are ASCII")
}

/// Extract the raw text of `"key":<value>` where value is either a bare
/// number or a quoted string (no escapes — this format never emits any).
fn field_text<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    if let Some(inner) = rest.strip_prefix('"') {
        let end = inner.find('"')?;
        Some(&inner[..end])
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

fn req_u64(line: &str, key: &'static str) -> Result<u64, ResumeError> {
    let t = field_text(line, key).ok_or(ResumeError::MissingField(key))?;
    t.parse::<u64>().map_err(|_| ResumeError::BadField(key))
}

fn req_u64_list(line: &str, key: &'static str) -> Result<Vec<u64>, ResumeError> {
    let t = field_text(line, key).ok_or(ResumeError::MissingField(key))?;
    if t.is_empty() {
        return Ok(Vec::new());
    }
    t.split(',')
        .map(|p| p.parse::<u64>().map_err(|_| ResumeError::BadField(key)))
        .collect()
}

fn req_hex(line: &str, key: &'static str) -> Result<Vec<u8>, ResumeError> {
    let t = field_text(line, key).ok_or(ResumeError::MissingField(key))?;
    if t.len() % 2 != 0 {
        return Err(ResumeError::BadField(key));
    }
    (0..t.len() / 2)
        .map(|i| {
            u8::from_str_radix(
                t.get(i * 2..i * 2 + 2).ok_or(ResumeError::BadField(key))?,
                16,
            )
            .map_err(|_| ResumeError::BadField(key))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StreamSnapshot {
        StreamSnapshot {
            config_digest: 0xDEAD_BEEF,
            input_digest: fnv1a(b"the input"),
            n_blocks: 10,
            block_bytes: 4096,
            prefix: 3,
            cadence: 2,
            arrivals: vec![0, 10, 20],
            encoded_at: vec![15, 25, 35],
            bits: vec![100, 200, 44],
            hist_base: (0..256).map(|i| i as u64).collect(),
            code_lengths: (0..=255u8).map(|i| if i < 4 { 2 } else { 0 }).collect(),
            committed_version: 2,
            stream_bytes: vec![0xAB; 43],
            stream_bit_len: 344,
        }
    }

    #[test]
    fn round_trips() {
        let s = sample();
        let j = s.to_json();
        assert_eq!(StreamSnapshot::from_json(&j).unwrap(), s);
    }

    #[test]
    fn empty_prefix_round_trips() {
        let s = StreamSnapshot {
            config_digest: 1,
            input_digest: 2,
            n_blocks: 5,
            block_bytes: 64,
            prefix: 0,
            cadence: 1,
            arrivals: vec![],
            encoded_at: vec![],
            bits: vec![],
            hist_base: vec![],
            code_lengths: vec![],
            committed_version: 0,
            stream_bytes: vec![],
            stream_bit_len: 0,
        };
        assert_eq!(StreamSnapshot::from_json(&s.to_json()).unwrap(), s);
    }

    #[test]
    fn atomic_write_and_load() {
        let dir = std::env::temp_dir().join(format!("tvs-ckpt-test-{}", std::process::id()));
        let s = sample();
        let path = s.write_atomic(&dir).unwrap();
        assert_eq!(path.file_name().unwrap(), SNAPSHOT_FILE);
        assert_eq!(StreamSnapshot::load(&path).unwrap(), s);
        // No tmp litter survives.
        let litter: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp-"))
            .collect();
        assert!(litter.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_missing_file_is_io_error() {
        match StreamSnapshot::load(Path::new("/nonexistent/snapshot.json")) {
            Err(ResumeError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn truncation_at_every_offset_never_panics() {
        let j = sample().to_json();
        for cut in 0..j.len() {
            let r = StreamSnapshot::from_json(&j[..cut]);
            assert!(r.is_err(), "truncated at {cut} must not parse");
        }
    }

    #[test]
    fn byte_corruption_never_panics() {
        // Flip every byte through a handful of corruptions; the parser
        // must return (anything), never panic, and a corrupted numeric
        // or hex field must not round-trip silently into a *different*
        // valid snapshot with inconsistent structure.
        let s = sample();
        let j = s.to_json();
        let bytes = j.as_bytes();
        for i in 0..bytes.len() {
            for flip in [0x01u8, 0x20, 0x80] {
                let mut m = bytes.to_vec();
                m[i] ^= flip;
                if let Ok(text) = String::from_utf8(m) {
                    let _ = StreamSnapshot::from_json(&text);
                }
            }
        }
    }

    #[test]
    fn newer_schema_is_rejected() {
        let j = sample().to_json().replace("\"schema\":1", "\"schema\":99");
        assert_eq!(
            StreamSnapshot::from_json(&j),
            Err(ResumeError::BadSchema(99))
        );
    }

    #[test]
    fn structural_inconsistency_is_rejected() {
        let mut s = sample();
        s.arrivals.pop();
        assert!(matches!(
            StreamSnapshot::from_json(&s.to_json()),
            Err(ResumeError::LengthMismatch(_))
        ));
        let mut s = sample();
        s.stream_bit_len += 8;
        assert!(matches!(
            StreamSnapshot::from_json(&s.to_json()),
            Err(ResumeError::LengthMismatch(_))
        ));
        let mut s = sample();
        s.prefix = 99;
        assert!(matches!(
            StreamSnapshot::from_json(&s.to_json()),
            Err(ResumeError::LengthMismatch(_))
        ));
    }

    #[test]
    fn digest_mismatch_is_detected() {
        let s = sample();
        assert!(s.check_matches(s.config_digest, s.input_digest).is_ok());
        assert_eq!(
            s.check_matches(s.config_digest + 1, s.input_digest),
            Err(ResumeError::InputMismatch)
        );
        assert_eq!(
            s.check_matches(s.config_digest, 0),
            Err(ResumeError::InputMismatch)
        );
    }

    #[test]
    fn errors_display_readably() {
        assert!(ResumeError::Truncated.to_string().contains("truncated"));
        assert!(ResumeError::MissingField("prefix")
            .to_string()
            .contains("prefix"));
        assert!(ResumeError::InputMismatch
            .to_string()
            .contains("different input"));
    }
}
