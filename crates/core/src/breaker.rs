//! The speculation circuit breaker: graceful degradation under sustained
//! misprediction or machine faults.
//!
//! Tolerant value speculation pays for itself only while predictions
//! mostly commit. When the input drifts faster than the predictor can
//! track — or when fault injection keeps killing speculative tasks — every
//! version rolls back, and the run wastes workers re-deriving state it
//! then throws away. The breaker watches a sliding window of speculation
//! outcomes (commits and check passes vs rollbacks and faults) and, when
//! the window degrades past a threshold, **trips**: new predictions are
//! held back and the workload falls back to conservative, natural-path
//! execution. After a cooldown it **half-opens**, letting a single probe
//! prediction through; enough consecutive probe successes close it again.
//!
//! The state machine is the classic one:
//!
//! ```text
//!            failures/window ≥ trip_ratio
//!   Closed ────────────────────────────────▶ Open
//!     ▲                                       │ cooldown basis events
//!     │  probe_successes consecutive          ▼
//!     └──────────────────────────────────  HalfOpen ──▶ Open (probe fails)
//! ```
//!
//! The breaker is deliberately clock-free: it advances on *basis events*
//! (completions of the speculation source), the same beat the
//! [`crate::SpeculationManager`] runs on, so it behaves identically under
//! the discrete-event simulator and the threaded executors.

use tvs_sre::SpecVersion;

/// Breaker tuning. The defaults favour quick reaction on the short
/// streams the test pipelines run: a window of 8 outcomes, tripping at
/// half failed, cooling down for 8 basis events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Sliding window length, in speculation outcomes.
    pub window: usize,
    /// Minimum outcomes in the window before the breaker may trip.
    pub min_samples: usize,
    /// Failure fraction of the window at which the breaker trips.
    pub trip_ratio: f64,
    /// Basis events the breaker stays open before half-opening.
    pub cooldown: u64,
    /// Consecutive half-open successes needed to close.
    pub probe_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 8,
            min_samples: 4,
            trip_ratio: 0.5,
            cooldown: 8,
            probe_successes: 1,
        }
    }
}

/// Where the breaker currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Speculation flows normally; outcomes are being recorded.
    Closed,
    /// Speculation suppressed; waiting out the cooldown.
    Open,
    /// One probe prediction allowed through to test recovery.
    HalfOpen,
}

/// What a recorded outcome did to the breaker — the caller (the
/// speculation manager) turns these into trace events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerTransition {
    /// The breaker opened. Fields mirror
    /// `tvs_trace::EventKind::BreakerTrip`.
    Tripped {
        /// Failures (rollbacks + faults) in the window at trip time.
        failures: u64,
        /// Successes (commits + check passes) in the window at trip time.
        commits: u64,
    },
    /// The breaker closed after enough probe successes.
    Recovered {
        /// Consecutive probe successes that closed it.
        successes: u64,
    },
}

/// Windowed rollback/commit/fault tracker gating new speculation.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    /// Ring of recent outcomes, `true` = failure.
    window: std::collections::VecDeque<bool>,
    /// Basis at which the breaker last opened.
    opened_at: u64,
    /// The probe prediction in flight, when half-open.
    probe: Option<SpecVersion>,
    /// A half-open [`Self::allows`] admission not yet turned into a probe
    /// via [`Self::note_prediction`]. Without this claim, two callers
    /// racing through `allows` between probe resolutions would *both* be
    /// admitted (both see `probe == None`) and two probes would fly at
    /// once — exactly what half-open exists to prevent.
    claimed: bool,
    /// Consecutive successes while half-open.
    streak: u32,
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(cfg: BreakerConfig) -> Self {
        assert!(cfg.window >= 1, "breaker window must be non-empty");
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            window: std::collections::VecDeque::with_capacity(cfg.window),
            opened_at: 0,
            probe: None,
            claimed: false,
            streak: 0,
            trips: 0,
        }
    }

    /// Current state (transitions happen in [`Self::allows`] and the
    /// `record_*` methods).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker has tripped so far.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Failures currently in the window.
    fn failures(&self) -> u64 {
        self.window.iter().filter(|&&f| f).count() as u64
    }

    /// Successes currently in the window.
    fn successes(&self) -> u64 {
        self.window.iter().filter(|&&f| !f).count() as u64
    }

    fn push_outcome(&mut self, failure: bool) {
        if self.window.len() == self.cfg.window {
            self.window.pop_front();
        }
        self.window.push_back(failure);
    }

    /// May a new prediction start at this basis event? Open→HalfOpen
    /// transition happens here once the cooldown elapses. In `HalfOpen`,
    /// a prediction is allowed only while no probe is in flight *and* no
    /// earlier admission is still pending its [`Self::note_prediction`]:
    /// a `true` return claims the single probe slot, so concurrent
    /// callers admit exactly one probe. Callers must follow an admission
    /// with `note_prediction` (the manager spawns the predictor on the
    /// same basis event), or the slot stays claimed until the next
    /// outcome resolves.
    pub fn allows(&mut self, basis: u64) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if basis.saturating_sub(self.opened_at) >= self.cfg.cooldown {
                    self.state = BreakerState::HalfOpen;
                    self.probe = None;
                    self.claimed = true;
                    self.streak = 0;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                if self.probe.is_none() && !self.claimed {
                    self.claimed = true;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// A prediction started while half-open: remember it as the probe
    /// (consuming the admission claimed by [`Self::allows`]). Returns
    /// `true` if this prediction is a probe (caller emits the
    /// `breaker-probe` trace event).
    pub fn note_prediction(&mut self, version: SpecVersion) -> bool {
        if self.state == BreakerState::HalfOpen {
            self.probe = Some(version);
            self.claimed = false;
            true
        } else {
            false
        }
    }

    /// A speculation success: an intermediate check passed or a version
    /// committed.
    pub fn record_success(&mut self) -> Option<BreakerTransition> {
        self.push_outcome(false);
        if self.state == BreakerState::HalfOpen {
            self.probe = None;
            self.claimed = false;
            self.streak += 1;
            if self.streak >= self.cfg.probe_successes.max(1) {
                self.state = BreakerState::Closed;
                self.window.clear();
                return Some(BreakerTransition::Recovered {
                    successes: self.streak as u64,
                });
            }
        }
        None
    }

    /// A speculation failure: a rollback, or an executor-reported fault
    /// ([`crate::SpeculationManager::record_fault`]). `basis` restarts the
    /// cooldown when the failure (re-)opens the breaker.
    pub fn record_failure(&mut self, basis: u64) -> Option<BreakerTransition> {
        self.push_outcome(true);
        match self.state {
            BreakerState::Closed => {
                let failures = self.failures();
                let total = self.window.len();
                if total >= self.cfg.min_samples.max(1)
                    && failures as f64 >= self.cfg.trip_ratio * total as f64
                {
                    self.state = BreakerState::Open;
                    self.opened_at = basis;
                    self.trips += 1;
                    return Some(BreakerTransition::Tripped {
                        failures,
                        commits: self.successes(),
                    });
                }
                None
            }
            BreakerState::HalfOpen => {
                // The probe (or a straggling older version) failed: back to
                // open, restarting the cooldown.
                self.state = BreakerState::Open;
                self.opened_at = basis;
                self.probe = None;
                self.claimed = false;
                self.streak = 0;
                self.trips += 1;
                Some(BreakerTransition::Tripped {
                    failures: self.failures(),
                    commits: self.successes(),
                })
            }
            // Stragglers failing while already open change nothing.
            BreakerState::Open => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_closed_below_the_trip_ratio() {
        let mut b = CircuitBreaker::new(BreakerConfig::default());
        // One failure per three successes — 25% of the window, below the
        // default 50% trip ratio — must never trip.
        for basis in 0..24u64 {
            if basis % 4 == 0 {
                assert!(b.record_failure(basis).is_none());
            } else {
                assert!(b.record_success().is_none());
            }
            assert_eq!(b.state(), BreakerState::Closed);
            assert!(b.allows(basis));
        }
    }

    #[test]
    fn trips_after_windowed_failures() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            window: 4,
            min_samples: 4,
            trip_ratio: 0.75,
            cooldown: 5,
            probe_successes: 1,
        });
        assert!(b.record_failure(1).is_none(), "below min_samples");
        assert!(b.record_success().is_none());
        assert!(b.record_failure(2).is_none());
        let t = b.record_failure(3).expect("3/4 failed ≥ 0.75");
        assert_eq!(
            t,
            BreakerTransition::Tripped {
                failures: 3,
                commits: 1
            }
        );
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        assert!(!b.allows(4), "still cooling down");
        assert!(!b.allows(7));
        assert!(b.allows(8), "cooldown elapsed → half-open probe");
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn half_open_probe_success_recovers() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            window: 4,
            min_samples: 2,
            trip_ratio: 0.5,
            cooldown: 2,
            probe_successes: 2,
        });
        b.record_failure(1);
        b.record_failure(1);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.allows(3));
        assert!(b.note_prediction(7), "half-open prediction is a probe");
        assert!(!b.allows(3), "one probe at a time");
        assert!(b.record_success().is_none(), "needs 2 successes");
        assert!(b.allows(4), "probe resolved; next probe may start");
        b.note_prediction(8);
        let r = b.record_success().expect("second success closes");
        assert_eq!(r, BreakerTransition::Recovered { successes: 2 });
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allows(5));
        assert!(!b.note_prediction(9), "closed predictions are not probes");
    }

    #[test]
    fn failed_probe_reopens_with_fresh_cooldown() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            window: 4,
            min_samples: 2,
            trip_ratio: 0.5,
            cooldown: 10,
            probe_successes: 1,
        });
        b.record_failure(1);
        b.record_failure(2);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.allows(12));
        b.note_prediction(3);
        let t = b.record_failure(13).expect("probe failure re-trips");
        assert!(matches!(t, BreakerTransition::Tripped { .. }));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        assert!(!b.allows(14), "cooldown restarted at basis 13");
        assert!(b.allows(23));
    }

    #[test]
    fn half_open_admits_exactly_one_probe_per_claim() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            window: 4,
            min_samples: 2,
            trip_ratio: 0.5,
            cooldown: 2,
            probe_successes: 1,
        });
        b.record_failure(1);
        b.record_failure(2);
        assert_eq!(b.state(), BreakerState::Open);
        // Two callers race through allows() at the same basis, *before*
        // either calls note_prediction: exactly one may be admitted.
        let first = b.allows(4);
        let second = b.allows(4);
        assert!(first, "the first caller claims the probe slot");
        assert!(!second, "the second caller must be refused");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // The claim is consumed by note_prediction; further callers are
        // still refused because the probe is now in flight.
        assert!(b.note_prediction(9));
        assert!(!b.allows(4));
        // Probe resolves: the next single admission works again.
        assert!(matches!(
            b.record_success(),
            Some(BreakerTransition::Recovered { .. })
        ));
    }

    #[test]
    fn concurrent_allows_admit_one_probe_across_threads() {
        use std::sync::{Arc, Mutex};
        let b = Arc::new(Mutex::new(CircuitBreaker::new(BreakerConfig {
            window: 4,
            min_samples: 2,
            trip_ratio: 0.5,
            cooldown: 0,
            probe_successes: 1,
        })));
        {
            let mut g = b.lock().unwrap();
            g.record_failure(1);
            g.record_failure(2);
            assert_eq!(g.state(), BreakerState::Open);
        }
        let admitted: Vec<bool> = (0..8)
            .map(|_| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || b.lock().unwrap().allows(3))
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect();
        assert_eq!(
            admitted.iter().filter(|&&a| a).count(),
            1,
            "exactly one of {} concurrent allows() callers admitted: {admitted:?}",
            admitted.len()
        );
        assert_eq!(b.lock().unwrap().state(), BreakerState::HalfOpen);
    }

    #[test]
    fn recovery_clears_the_window() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            window: 4,
            min_samples: 2,
            trip_ratio: 0.5,
            cooldown: 1,
            probe_successes: 1,
        });
        b.record_failure(1);
        b.record_failure(2);
        assert!(b.allows(3));
        b.note_prediction(5);
        assert!(matches!(
            b.record_success(),
            Some(BreakerTransition::Recovered { .. })
        ));
        // Old failures must not linger: one fresh failure alone cannot trip.
        assert!(b.record_failure(4).is_none());
        assert_eq!(b.state(), BreakerState::Closed);
    }
}
