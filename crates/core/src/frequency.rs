//! Speculation and verification frequency — the paper's §II-B knobs.
//!
//! "Two distinct parameters need to be handled: speculation frequency — the
//! rate at which we calculate new speculative values, and verification
//! frequency — the rate at which we check if our speculations are not
//! stale."
//!
//! Basis progress is counted in *basis events*: completions of the
//! speculation source (for the Huffman benchmark, reduce-task results; the
//! paper's Fig. 5 x-axis counts the same thing).

/// When speculation may (re)start.
///
/// `step` is the paper's Fig. 5 "step size": the number of basis events
/// that must have been absorbed before the first prediction is made. Step 0
/// is the extreme of predicting from the very first block's histogram,
/// before any reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpeculationSchedule {
    /// Minimum basis events before the first prediction (0 = immediately,
    /// from the first raw block).
    pub step: u64,
}

impl SpeculationSchedule {
    /// Construct a schedule with the given step size.
    pub fn with_step(step: u64) -> Self {
        SpeculationSchedule { step }
    }

    /// Should a (first or replacement) prediction be started, given that
    /// `basis` events have been absorbed and no speculation is active?
    ///
    /// After a rollback the next prediction starts at the next basis event
    /// regardless of step ("a negative comparison generates a new
    /// filtering task that uses the new coefficients") — pass
    /// `restarting = true` for that case.
    pub fn should_start(&self, basis: u64, restarting: bool) -> bool {
        restarting || basis >= self.step
    }
}

/// When active speculations get verified against fresher data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerificationPolicy {
    /// Check after every `k`-th basis event (the paper's baseline uses
    /// `k = 8`: "verifies speculation upon reception of every eighth
    /// result of a reduce task histogram").
    EveryKth(u64),
    /// The paper's *optimistic* extreme: speculate on the first available
    /// value and verify only once, when the final value is known.
    Optimistic,
    /// The paper's *full speculation* extreme: verify at every opportunity
    /// and restart speculation immediately on failure.
    Full,
}

impl VerificationPolicy {
    /// The paper's baseline configuration.
    pub fn baseline() -> Self {
        VerificationPolicy::EveryKth(8)
    }

    /// Whether an intermediate check should run at basis event `basis`
    /// (1-based), for a speculation installed at basis `installed_at`.
    ///
    /// The final check (when the true value is known) always runs and is
    /// not governed by this method.
    pub fn should_check(&self, basis: u64, installed_at: u64) -> bool {
        if basis <= installed_at {
            return false; // nothing new to compare against
        }
        match *self {
            VerificationPolicy::EveryKth(k) => {
                let k = k.max(1);
                basis.is_multiple_of(k)
            }
            VerificationPolicy::Optimistic => false,
            VerificationPolicy::Full => true,
        }
    }

    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            VerificationPolicy::EveryKth(_) => "baseline",
            VerificationPolicy::Optimistic => "optimistic",
            VerificationPolicy::Full => "full",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_zero_starts_immediately() {
        let s = SpeculationSchedule::with_step(0);
        assert!(s.should_start(0, false));
        assert!(s.should_start(5, false));
    }

    #[test]
    fn step_gates_first_start() {
        let s = SpeculationSchedule::with_step(8);
        assert!(!s.should_start(0, false));
        assert!(!s.should_start(7, false));
        assert!(s.should_start(8, false));
        assert!(s.should_start(9, false));
    }

    #[test]
    fn restart_ignores_step() {
        let s = SpeculationSchedule::with_step(100);
        assert!(s.should_start(3, true));
    }

    #[test]
    fn every_kth_checks_on_multiples() {
        let v = VerificationPolicy::EveryKth(8);
        assert!(!v.should_check(7, 0));
        assert!(v.should_check(8, 0));
        assert!(!v.should_check(9, 0));
        assert!(v.should_check(16, 0));
    }

    #[test]
    fn no_check_before_new_data() {
        // A speculation installed at basis 8 must not be checked at 8.
        let v = VerificationPolicy::EveryKth(8);
        assert!(!v.should_check(8, 8));
        assert!(v.should_check(16, 8));
        let f = VerificationPolicy::Full;
        assert!(!f.should_check(8, 8));
        assert!(f.should_check(9, 8));
    }

    #[test]
    fn optimistic_never_checks_intermediately() {
        let v = VerificationPolicy::Optimistic;
        for basis in 1..100 {
            assert!(!v.should_check(basis, 0));
        }
    }

    #[test]
    fn full_checks_every_event() {
        let v = VerificationPolicy::Full;
        for basis in 1..20 {
            assert!(v.should_check(basis, 0));
        }
    }

    #[test]
    fn every_kth_zero_is_clamped() {
        let v = VerificationPolicy::EveryKth(0);
        assert!(v.should_check(1, 0)); // behaves like every-1st
    }

    #[test]
    fn baseline_is_every_8th() {
        assert_eq!(
            VerificationPolicy::baseline(),
            VerificationPolicy::EveryKth(8)
        );
        assert_eq!(VerificationPolicy::baseline().label(), "baseline");
    }
}
