//! State-machine fuzz of [`SpeculationManager`]: drive it with arbitrary
//! (but causally plausible) event sequences and check global invariants.
//! Hand-rolled seeded loops (`tvs_rng::cases`) stand in for proptest in the
//! offline build; per-case seeds make failures reproducible.

use std::collections::HashSet;
use tvs_core::{Action, CheckResult, SpeculationManager, SpeculationSchedule, VerificationPolicy};
use tvs_rng::{cases, SmallRng};

#[derive(Debug, Clone)]
enum Ev {
    Basis,
    /// Deliver the pending prediction, if any.
    Install,
    /// Answer one outstanding check with the given verdict and whether a
    /// candidate accompanies it.
    CheckResult {
        valid: bool,
        with_candidate: bool,
    },
    /// Declare the final value (at most once, ends the event stream).
    Final {
        valid: bool,
    },
}

/// Weighted event draw matching the original proptest strategy
/// (Basis 3 : Install 2 : CheckResult 2 : Final 1).
fn draw_ev(rng: &mut SmallRng) -> Ev {
    match rng.random_range(0..8u8) {
        0..=2 => Ev::Basis,
        3..=4 => Ev::Install,
        5..=6 => Ev::CheckResult {
            valid: rng.random(),
            with_candidate: rng.random(),
        },
        _ => Ev::Final {
            valid: rng.random(),
        },
    }
}

#[test]
fn prop_manager_invariants() {
    cases(0xFA22, 256, |rng, case| {
        let step = rng.random_range(0..4u64);
        let verify = [
            VerificationPolicy::EveryKth(2),
            VerificationPolicy::Optimistic,
            VerificationPolicy::Full,
        ][rng.random_range(0..3usize)];
        let n_events = rng.random_range(1..60usize);
        let events: Vec<Ev> = (0..n_events).map(|_| draw_ev(rng)).collect();

        let mut mgr: SpeculationManager<u64> =
            SpeculationManager::new(SpeculationSchedule::with_step(step), verify);

        let mut basis = 0u64;
        let mut pending: Option<u32> = None; // outstanding prediction
        let mut outstanding_checks: Vec<u32> = Vec::new();
        let mut outstanding_final: Option<u32> = None;
        let mut started: HashSet<u32> = HashSet::new();
        let mut rolled_back: HashSet<u32> = HashSet::new();
        let mut committed: Option<u32> = None;
        let mut recompute = false;
        let mut finalised = false;

        #[allow(clippy::too_many_arguments)]
        fn absorb(
            actions: Vec<Action>,
            pending: &mut Option<u32>,
            outstanding_checks: &mut Vec<u32>,
            outstanding_final: &mut Option<u32>,
            started: &mut HashSet<u32>,
            rolled_back: &mut HashSet<u32>,
            committed: &mut Option<u32>,
            recompute: &mut bool,
        ) {
            for a in actions {
                match a {
                    Action::StartPrediction { version } => {
                        assert!(started.insert(version), "version {version} started twice");
                        assert!(pending.is_none(), "two outstanding predictions");
                        *pending = Some(version);
                    }
                    Action::SpawnCheck { version } => outstanding_checks.push(version),
                    Action::SpawnFinalCheck { version } => {
                        assert!(outstanding_final.is_none());
                        *outstanding_final = Some(version);
                    }
                    Action::PromoteCandidate { version } => {
                        assert!(started.insert(version), "promoted version reused");
                    }
                    Action::Rollback { version } => {
                        assert!(started.contains(&version), "rollback of unknown version");
                        assert!(rolled_back.insert(version), "double rollback");
                        assert_ne!(Some(version), *committed, "rollback after commit");
                        // Any outstanding work for it becomes stale.
                        if *pending == Some(version) {
                            *pending = None;
                        }
                    }
                    Action::Commit { version } => {
                        assert!(committed.is_none(), "double commit");
                        assert!(
                            !rolled_back.contains(&version),
                            "committed an aborted version"
                        );
                        *committed = Some(version);
                    }
                    Action::RecomputeNaturally => {
                        assert!(!*recompute, "double recompute");
                        *recompute = true;
                    }
                }
            }
        }

        for ev in events {
            if finalised && !matches!(ev, Ev::CheckResult { .. }) {
                // After the final value only stale check deliveries remain
                // interesting; other events are causally impossible.
                continue;
            }
            match ev {
                Ev::Basis => {
                    basis += 1;
                    let acts = mgr.on_basis(basis);
                    absorb(
                        acts,
                        &mut pending,
                        &mut outstanding_checks,
                        &mut outstanding_final,
                        &mut started,
                        &mut rolled_back,
                        &mut committed,
                        &mut recompute,
                    );
                }
                Ev::Install => {
                    if let Some(v) = pending.take() {
                        let accepted = mgr.install_prediction(v, u64::from(v));
                        // The engine may have rolled this version back via
                        // on_final in the meantime; both outcomes are legal,
                        // but acceptance implies it was not rolled back.
                        if accepted {
                            assert!(!rolled_back.contains(&v), "case {case}");
                        }
                    }
                }
                Ev::CheckResult {
                    valid,
                    with_candidate,
                } => {
                    if let Some(v) = outstanding_checks.pop() {
                        let result = if valid {
                            CheckResult::pass(0.0)
                        } else {
                            CheckResult::fail(1.0)
                        };
                        let candidate = with_candidate.then(|| (basis + 100, basis));
                        let acts = mgr.on_check_result(v, result, candidate);
                        absorb(
                            acts,
                            &mut pending,
                            &mut outstanding_checks,
                            &mut outstanding_final,
                            &mut started,
                            &mut rolled_back,
                            &mut committed,
                            &mut recompute,
                        );
                    }
                }
                Ev::Final { valid } => {
                    if finalised {
                        continue;
                    }
                    finalised = true;
                    let acts = mgr.on_final();
                    absorb(
                        acts,
                        &mut pending,
                        &mut outstanding_checks,
                        &mut outstanding_final,
                        &mut started,
                        &mut rolled_back,
                        &mut committed,
                        &mut recompute,
                    );
                    if let Some(v) = outstanding_final.take() {
                        let result = if valid {
                            CheckResult::pass(0.0)
                        } else {
                            CheckResult::fail(1.0)
                        };
                        let acts = mgr.on_final_check_result(v, result);
                        absorb(
                            acts,
                            &mut pending,
                            &mut outstanding_checks,
                            &mut outstanding_final,
                            &mut started,
                            &mut rolled_back,
                            &mut committed,
                            &mut recompute,
                        );
                    }
                }
            }
        }

        // Terminal coherence.
        assert_eq!(mgr.committed(), committed, "case {case}");
        if finalised {
            assert!(mgr.is_done(), "case {case}");
            // Exactly one of commit / recompute decided the run.
            assert!(committed.is_some() ^ recompute, "case {case}");
        }
        if let Some(v) = committed {
            assert!(!rolled_back.contains(&v), "case {case}");
        }
        // Stats agree with the model.
        assert_eq!(
            mgr.stats().rollbacks as usize,
            rolled_back.len(),
            "case {case}"
        );
    });
}
