//! A small, dependency-free PRNG with a `rand`-like surface.
//!
//! The build environment is fully offline, so the workspace cannot depend on
//! the `rand` crate; this crate supplies the two things the repo actually
//! uses — a seedable small RNG ([`SmallRng`], xoshiro256++ seeded via
//! splitmix64) with `random()` / `random_range()` methods mirroring the
//! `rand 0.9` spelling, and a [`cases`] helper that drives the hand-rolled
//! property tests with deterministic per-case seeds.
//!
//! Determinism is part of the contract: the same seed always yields the same
//! stream, on every platform, forever — workload generators rely on this to
//! make figure runs reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A small, fast, seedable PRNG (xoshiro256++).
///
/// Not cryptographically secure; statistically solid for simulation,
/// workload synthesis and test-case generation.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SmallRng {
    /// Create a generator from a 64-bit seed (splitmix64-expanded, so
    /// similar seeds still yield unrelated streams).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SmallRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64 random bits (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// A uniformly random value of `T` over its natural domain (`[0, 1)`
    /// for floats, the full range for integers, fair coin for `bool`).
    pub fn random<T: FromRandom>(&mut self) -> T {
        T::from_random(self)
    }

    /// A uniformly random value in `range`. Panics on an empty range, like
    /// `rand`.
    pub fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// Uniform `u64` in `[0, span)` via Lemire's multiply-shift. `span`
    /// must be non-zero.
    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        (((self.next_u64() as u128) * (span as u128)) >> 64) as u64
    }

    /// Fill `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&w[..rest.len()]);
        }
    }
}

/// Types that can be sampled uniformly over their natural domain.
pub trait FromRandom {
    /// Draw one value.
    fn from_random(rng: &mut SmallRng) -> Self;
}

impl FromRandom for f64 {
    fn from_random(rng: &mut SmallRng) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for f32 {
    fn from_random(rng: &mut SmallRng) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl FromRandom for bool {
    fn from_random(rng: &mut SmallRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! from_random_int {
    ($($t:ty),*) => {$(
        impl FromRandom for $t {
            fn from_random(rng: &mut SmallRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
from_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`SmallRng::random_range`] can sample from. The element
/// type is an associated type (not a trait parameter as in `rand`), so
/// the range alone pins the result type and unannotated call sites infer.
pub trait SampleRange {
    /// The element type the range yields.
    type Output;
    /// Draw one value from the range.
    fn sample_from(self, rng: &mut SmallRng) -> Self::Output;
}

macro_rules! sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                (self.start as $u).wrapping_add(rng.below(span) as $u) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut SmallRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $u).wrapping_add(rng.below(span + 1) as $u) as $t
            }
        }
    )*};
}
sample_range_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from(self, rng: &mut SmallRng) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + rng.random::<f64>() * (self.end - self.start)
    }
}

/// Drive a hand-rolled property test: runs `body` once per case with a
/// deterministic per-case RNG derived from `seed`, so failures reproduce.
///
/// The case index is reported on panic via a wrapping message from the
/// caller's asserts; keep bodies self-describing.
pub fn cases(seed: u64, n: usize, mut body: impl FnMut(&mut SmallRng, usize)) {
    for i in 0..n {
        let mut rng = SmallRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15));
        body(&mut rng, i);
    }
}

/// A random byte vector with length drawn uniformly from `len` — the
/// work-horse generator of the property tests.
pub fn bytes(rng: &mut SmallRng, len: Range<usize>) -> Vec<u8> {
    let n = rng.random_range(len);
    let mut v = vec![0u8; n];
    rng.fill_bytes(&mut v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: i32 = rng.random_range(-120..=120);
            assert!((-120..=120).contains(&x));
            let y = rng.random_range(0..4u8);
            assert!(y < 4);
            let z: usize = rng.random_range(300..900usize);
            assert!((300..900).contains(&z));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_endpoints_reachable() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.random_range(0..4usize)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all of 0..4 should appear: {seen:?}"
        );
        let mut lo_hi = (false, false);
        for _ in 0..1000 {
            match rng.random_range(0..=1u64) {
                0 => lo_hi.0 = true,
                _ => lo_hi.1 = true,
            }
        }
        assert!(lo_hi.0 && lo_hi.1);
    }

    #[test]
    fn negative_int_ranges() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut any_neg = false;
        for _ in 0..1000 {
            let x: i32 = rng.random_range(-5..5);
            assert!((-5..5).contains(&x));
            any_neg |= x < 0;
        }
        assert!(any_neg);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SmallRng::seed_from_u64(3);
        for n in 0..20usize {
            let mut v = vec![0u8; n];
            rng.fill_bytes(&mut v);
            if n >= 8 {
                assert!(v.iter().any(|&b| b != 0), "length {n} all zero");
            }
        }
    }

    #[test]
    fn uniformity_smoke() {
        // Chi-squared-ish sanity: 256 buckets, 64k draws, no bucket wildly
        // off the 256 mean.
        let mut rng = SmallRng::seed_from_u64(1234);
        let mut buckets = [0u32; 256];
        for _ in 0..65536 {
            buckets[rng.random_range(0..256usize)] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!(
                (150..400).contains(&b),
                "bucket {i} count {b} far from mean 256"
            );
        }
    }

    #[test]
    fn cases_are_reproducible() {
        let mut first: Vec<u64> = Vec::new();
        cases(99, 5, |rng, _| first.push(rng.next_u64()));
        let mut second: Vec<u64> = Vec::new();
        cases(99, 5, |rng, _| second.push(rng.next_u64()));
        assert_eq!(first, second);
        // Distinct cases get distinct streams.
        assert!(first.windows(2).all(|w| w[0] != w[1]));
    }
}
