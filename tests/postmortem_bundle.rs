//! Flight-recorder acceptance tests.
//!
//! A forced breaker-trip run (fixed seed, simulator and real threads)
//! must produce a post-mortem bundle from which the offline loader
//! deterministically reconstructs the complete rollback cascade tree,
//! with per-lineage wasted-µs totals equal to the aggregate
//! `SpecHealth::wasted_us`. The simulator's bundle must additionally be
//! byte-identical across captures, and the always-on crash hook must
//! dump a bundle when a chaos run dies with a structured `RunError`.

use std::path::PathBuf;
use tvs_core::{BreakerConfig, SpeculationSchedule, Tolerance, VerificationPolicy};
use tvs_iosim::Uniform;
use tvs_pipelines::config::HuffmanConfig;
use tvs_pipelines::postmortem::{self, BundleMeta, Trigger};
use tvs_pipelines::runner::{
    run_huffman_sim_chaos, run_huffman_sim_events, run_huffman_threaded_events,
};
use tvs_sre::exec::sim::SimChaos;
use tvs_sre::{x86_smp, DispatchPolicy, FaultInjector, FaultKind, FaultPlan, FaultSite};

/// The adversarial breaker-trip scenario shared by `tvs-chaos` and
/// `tvs-report`: continuously drifting input, zero tolerance, a tight
/// breaker window — every prediction mispredicts.
fn breaker_cfg() -> HuffmanConfig {
    let mut c = HuffmanConfig::disk_x86(DispatchPolicy::Aggressive);
    c.block_bytes = 1024;
    c.reduce_ratio = 4;
    c.offset_fanout = 4;
    c.schedule = SpeculationSchedule::with_step(1);
    c.verification = VerificationPolicy::Full;
    c.tolerance = Tolerance { margin: 0.0 };
    c.breaker = Some(BreakerConfig {
        window: 4,
        min_samples: 2,
        trip_ratio: 0.5,
        cooldown: 1_000,
        probe_successes: 1,
    });
    c
}

fn drifting() -> Vec<u8> {
    (0..32 * 1024usize)
        .map(|i| ((i / 1024) * 7 + i % 13) as u8)
        .collect()
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tvs-pm-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn sim_breaker_trip_bundle_is_byte_deterministic() {
    let data = drifting();
    let cfg = breaker_cfg();
    let slow = Uniform {
        gap_us: 100,
        start_us: 0,
    };
    let capture = |root: &PathBuf| {
        let (_, log) = run_huffman_sim_events(&data, &cfg, &x86_smp(8), &slow);
        assert!(log.count("breaker-trip") >= 1, "scenario must trip");
        let meta = BundleMeta::for_log(Trigger::BreakerTrip, 2011, "aggressive", &log, None);
        postmortem::write_bundle(root, &meta, &log, &[]).expect("bundle writes")
    };
    let (da, db) = (tmp_dir("sim-a"), tmp_dir("sim-b"));
    let (a, b) = (capture(&da), capture(&db));
    // The reconstruction inputs are byte-identical across captures of
    // the same seeded crash. (The raw trace members also carry wall-µs
    // stamps — real time even under the simulator — so only the
    // virtual-time members can be compared bytewise.)
    for member in ["MANIFEST.json", "lineage.csv"] {
        let ba = std::fs::read(a.join(member)).expect(member);
        let bb = std::fs::read(b.join(member)).expect(member);
        assert_eq!(ba, bb, "{member} must be byte-identical across captures");
    }
    let ba = postmortem::load_bundle(&a).expect("first bundle reloads");
    let bb = postmortem::load_bundle(&b).expect("second bundle reloads");
    assert_eq!(
        ba.lineage.render_tree(),
        bb.lineage.render_tree(),
        "two captures reconstruct the same cascade forest"
    );
    // The offline reconstruction conserves the live aggregate and
    // renders the same cascade forest as the in-memory join.
    let (_, log) = run_huffman_sim_events(&data, &cfg, &x86_smp(8), &slow);
    let bundle = postmortem::load_bundle(&a).expect("bundle reloads");
    bundle.check().expect("conservation holds");
    assert_eq!(bundle.meta.wasted_us, log.health().wasted_us);
    assert_eq!(bundle.lineage.render_tree(), log.lineage().render_tree());
    assert!(
        !bundle.lineage.render_tree().is_empty(),
        "a tripping run opens at least one lineage"
    );
    let _ = std::fs::remove_dir_all(da);
    let _ = std::fs::remove_dir_all(db);
}

#[test]
fn threaded_breaker_trip_bundle_reconstructs_the_cascade() {
    let data = drifting();
    let cfg = breaker_cfg();
    let slow = Uniform {
        gap_us: 100,
        start_us: 0,
    };
    let (_, log) = run_huffman_threaded_events(&data, &cfg, 4, &slow, 1000);
    let meta = BundleMeta::for_log(Trigger::BreakerTrip, 2012, "aggressive", &log, None);
    let root = tmp_dir("threaded");
    let path = postmortem::write_bundle(&root, &meta, &log, &[]).expect("bundle writes");
    let bundle = postmortem::load_bundle(&path).expect("bundle reloads");
    bundle.check().expect("conservation holds");
    assert_eq!(bundle.meta.timebase, "wall-us");
    assert_eq!(bundle.lineage.render_tree(), log.lineage().render_tree());
    // Reloading is itself deterministic: two loads render identically.
    let again = postmortem::load_bundle(&path).expect("bundle reloads twice");
    assert_eq!(
        again.lineage.render_tree(),
        bundle.lineage.render_tree(),
        "offline reconstruction is stable"
    );
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn run_error_crash_hook_dumps_a_bundle() {
    // Injected panics are recovered state, not test noise.
    std::panic::set_hook(Box::new(|info| {
        let msg = info
            .payload()
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| info.payload().downcast_ref::<String>().map(String::as_str))
            .unwrap_or("<non-string panic>");
        if !msg.contains("injected") {
            eprintln!("panic: {msg} ({:?})", info.location());
        }
    }));
    let root = tmp_dir("crash-hook");
    std::env::set_var("TVS_RESULTS_DIR", &root);
    // Every task body panics once and retry is forbidden: the first
    // non-speculative fault is terminal and the run dies with a
    // structured error, which must fire the always-on capture hook.
    let plan = FaultPlan::new(77).with_rule(FaultSite::TaskBody, FaultKind::PanicTask, 1.0);
    let chaos = SimChaos {
        faults: FaultInjector::new(plan),
        retry: tvs_sre::RetryPolicy {
            max_attempts: 1,
            ..Default::default()
        },
        ..SimChaos::default()
    };
    let cfg = HuffmanConfig::disk_x86(DispatchPolicy::Balanced);
    let arrival = Uniform {
        gap_us: 2,
        start_us: 0,
    };
    let data: Vec<u8> = (0..16 * 1024).map(|i| (i % 251) as u8).collect();
    let res = run_huffman_sim_chaos(&data, &cfg, &x86_smp(4), &arrival, &chaos);
    assert!(res.is_err(), "all-panic plan must fail the run");
    let bundle_dir = root.join("postmortem_dev_77");
    let bundle = postmortem::load_bundle(&bundle_dir)
        .expect("crash hook must have written a reloadable bundle");
    assert_eq!(bundle.meta.trigger, Trigger::RunError);
    assert_eq!(bundle.meta.seed, 77);
    assert!(bundle.meta.error.is_some(), "structured error is recorded");
    bundle.check().expect("conservation holds");
    std::env::remove_var("TVS_RESULTS_DIR");
    let _ = std::fs::remove_dir_all(root);
}
