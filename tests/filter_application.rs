//! The iterative-filter application (the paper's Fig. 1 example) across
//! the speculation design space.

use tvs_core::{SpeculationSchedule, Tolerance, VerificationPolicy};
use tvs_pipelines::filter::{run_filter_sim, FilterConfig};
use tvs_sre::DispatchPolicy;

fn base(policy: DispatchPolicy) -> FilterConfig {
    FilterConfig {
        policy,
        ..Default::default()
    }
}

#[test]
fn speculation_cuts_filter_latency() {
    let (ns, _) = run_filter_sim(&base(DispatchPolicy::NonSpeculative), 128, 10, 8);
    let (sp, _) = run_filter_sim(&base(DispatchPolicy::Balanced), 128, 10, 8);
    assert!(sp.committed_version.is_some());
    assert!(
        sp.mean_latency() < ns.mean_latency() * 0.8,
        "speculative {} vs non-spec {}",
        sp.mean_latency(),
        ns.mean_latency()
    );
}

#[test]
fn outputs_match_committed_coefficients_in_all_modes() {
    use tvs_pipelines::filter::fir_checksum;
    for policy in [
        DispatchPolicy::NonSpeculative,
        DispatchPolicy::Balanced,
        DispatchPolicy::Aggressive,
        DispatchPolicy::Conservative,
    ] {
        let (res, _) = run_filter_sim(&base(policy), 32, 10, 4);
        assert_eq!(res.blocks.len(), 32);
        for (i, b) in res.blocks.iter().enumerate() {
            // Recompute the block deterministically (same generator as the
            // harness) and compare checksums.
            let block: Vec<u8> = (0..4096)
                .map(|j| (((i * 31 + j) as u32).wrapping_mul(2654435761) >> 24) as u8)
                .collect();
            let expect = fir_checksum(&block, &res.coefficients);
            assert!(
                (b.checksum - expect).abs() <= 1e-9 * expect.abs().max(1.0),
                "{policy:?} block {i}"
            );
        }
    }
}

#[test]
fn earlier_speculation_is_better_despite_rollbacks() {
    // The paper's conclusion: "it is typically worthwhile to begin
    // speculating early; giving speculative tasks a head start maximizes
    // the opportunities for parallelism."
    let early = FilterConfig {
        policy: DispatchPolicy::Balanced,
        schedule: SpeculationSchedule::with_step(1),
        verification: VerificationPolicy::Full,
        ..Default::default()
    };
    let late = FilterConfig {
        policy: DispatchPolicy::Balanced,
        schedule: SpeculationSchedule::with_step(10),
        ..Default::default()
    };
    let (e, em) = run_filter_sim(&early, 128, 10, 8);
    let (l, lm) = run_filter_sim(&late, 128, 10, 8);
    assert!(
        em.rollbacks > 0,
        "early speculation must pay some rollbacks"
    );
    assert_eq!(lm.rollbacks, 0, "iterate 10 of 12 is converged");
    assert!(
        e.mean_latency() < l.mean_latency(),
        "early {} must still beat late {}",
        e.mean_latency(),
        l.mean_latency()
    );
}

#[test]
fn tighter_tolerance_needs_more_convergence() {
    // With mu = 0.5 the iterate halves its distance per step; the L2
    // tolerance decides which iterate first commits.
    let commits = |tol: f64, step: u64| {
        let cfg = FilterConfig {
            policy: DispatchPolicy::Balanced,
            schedule: SpeculationSchedule::with_step(step),
            verification: VerificationPolicy::Optimistic,
            tolerance: Tolerance { margin: tol },
            ..Default::default()
        };
        let (res, _) = run_filter_sim(&cfg, 16, 10, 4);
        res.committed_version.is_some()
    };
    // A loose margin commits an early iterate; a tight one rejects it.
    assert!(commits(0.2, 2));
    assert!(!commits(0.001, 2));
    // The same tight margin accepts a late iterate.
    assert!(commits(0.001, 11));
}

#[test]
fn committed_outputs_stay_within_tolerance_of_natural() {
    // A committed speculation uses the *speculated* iterate, not the final
    // one — that is the tolerance trade. The outputs must agree with the
    // natural run to within the accepted coefficient error (the iterate at
    // step 11 of 12 is within 0.5^11 of the fixed point).
    let (ns, _) = run_filter_sim(&base(DispatchPolicy::NonSpeculative), 16, 10, 4);
    let spec_cfg = FilterConfig {
        policy: DispatchPolicy::Balanced,
        schedule: SpeculationSchedule::with_step(11),
        ..Default::default()
    };
    let (sp, _) = run_filter_sim(&spec_cfg, 16, 10, 4);
    assert!(sp.committed_version.is_some());
    for (a, b) in ns.blocks.iter().zip(&sp.blocks) {
        let scale = a.checksum.abs().max(1.0);
        let rel = (a.checksum - b.checksum).abs() / scale;
        assert!(
            rel < 0.01,
            "committed output must stay within tolerance: {rel}"
        );
        assert!(
            rel > 0.0,
            "speculated coefficients differ from final ones by design"
        );
    }
}

#[test]
fn single_worker_and_many_blocks() {
    let (res, m) = run_filter_sim(&base(DispatchPolicy::Balanced), 200, 2, 1);
    assert_eq!(res.blocks.len(), 200);
    assert!(
        m.utilization() > 0.5,
        "one worker should be busy: {}",
        m.utilization()
    );
}
