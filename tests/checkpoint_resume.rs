//! Checkpoint/restart and the degradation ladder, end to end.
//!
//! A checkpointed run killed at block K and resumed from its snapshot
//! must produce a stream *byte-identical* to the uninterrupted run, on
//! both executors — the resume path encodes every re-fed block with the
//! snapshot's committed tree and never re-speculates. Snapshots are
//! bound to the input and the output-shaping configuration, so resuming
//! against the wrong data or shape is a structured error, never a
//! silently divergent stream. Above the breaker, the degradation ladder
//! must demonstrably step down under sustained misprediction (sim and
//! threaded), and a supervised threaded run under duplicate-completion
//! injection must take the epoch-reject path rather than double-commit.

use std::path::PathBuf;
use tvs_core::{CheckpointConfig, LadderConfig, ResumeError, StreamSnapshot};
use tvs_huffman::decode_exact;
use tvs_iosim::Uniform;
use tvs_pipelines::config::HuffmanConfig;
use tvs_pipelines::runner::{
    resume_huffman_sim, resume_huffman_threaded, run_huffman_sim, run_huffman_sim_checkpointed,
    run_huffman_sim_events, run_huffman_threaded, run_huffman_threaded_chaos,
    run_huffman_threaded_checkpointed, run_huffman_threaded_events, RunOutcome,
};
use tvs_sre::exec::threaded::ThreadedConfig;
use tvs_sre::{x86_smp, DispatchPolicy, FaultInjector, FaultKind, FaultPlan, FaultSite};

/// Stationary text with a rich alphabet: speculation commits cleanly,
/// so the committed tree — and therefore the output stream — is the
/// same on every executor and every resume.
fn stationary(n: usize) -> Vec<u8> {
    let mut pattern = b"etaoin shrdlu ".repeat(10);
    pattern.extend_from_slice(b"qzxjkvbw,.!?");
    (0..n).map(|i| pattern[i % pattern.len()]).collect()
}

/// Small blocks and ratios so 64 KiB exercises many blocks, reduces and
/// offset bursts; step 1 speculates from the first reduce outcome.
fn cfg() -> HuffmanConfig {
    let mut c = HuffmanConfig::disk_x86(DispatchPolicy::Balanced);
    c.block_bytes = 1024;
    c.reduce_ratio = 4;
    c.offset_fanout = 4;
    c.schedule = tvs_core::SpeculationSchedule::with_step(1);
    c.collect_output = true;
    c
}

fn arrival() -> Uniform {
    Uniform {
        gap_us: 30,
        start_us: 0,
    }
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tvs-ckpt-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn output_of(out: &RunOutcome) -> (&[u8], u64) {
    let (bytes, bits, _) = out.result.output.as_ref().expect("output collected");
    (bytes, *bits)
}

#[test]
fn sim_kill_and_resume_is_byte_identical() {
    let data = stationary(64 * 1024);
    let base = run_huffman_sim(&data, &cfg(), &x86_smp(8), &arrival());
    let (base_bytes, base_bits) = output_of(&base);
    for kill_at in [8usize, 24, 48] {
        let dir = scratch_dir(&format!("sim-{kill_at}"));
        let mut c = cfg();
        c.checkpoint = Some(CheckpointConfig {
            every_blocks: 4,
            dir: dir.clone(),
            halt_at_block: Some(kill_at),
        });
        let snap = run_huffman_sim_checkpointed(&data, &c, &x86_smp(8), &arrival()).into_snapshot();
        assert!(
            snap.prefix >= kill_at as u64,
            "halt fires once the committed prefix reaches the kill block"
        );
        // The durable copy on disk must be the same snapshot the halted
        // run reported in memory.
        let on_disk = StreamSnapshot::load(&CheckpointConfig::new(4, &dir).snapshot_path())
            .expect("halt always persists a snapshot");
        assert_eq!(on_disk.prefix, snap.prefix);
        assert_eq!(on_disk.stream_bit_len, snap.stream_bit_len);

        let resumed = resume_huffman_sim(&on_disk, &data, &cfg(), &x86_smp(8), &arrival())
            .expect("snapshot matches input and config");
        let (res_bytes, res_bits) = output_of(&resumed);
        assert_eq!(res_bits, base_bits, "kill at {kill_at}: bit length differs");
        assert_eq!(
            res_bytes, base_bytes,
            "kill at {kill_at}: resumed stream is not byte-identical"
        );
        // And the stream still decodes back to the input.
        let (_, _, lengths) = resumed.result.output.as_ref().unwrap();
        let table = tvs_huffman::CodeTable::from_lengths(lengths);
        let decoded = decode_exact(res_bytes, 0, res_bits, data.len(), &table)
            .expect("resumed stream decodes");
        assert_eq!(decoded, data);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn threaded_kill_and_resume_is_byte_identical() {
    let data = stationary(64 * 1024);
    // Cross-executor identity holds for stationary input, so the sim run
    // is the reference for the threaded resumes too.
    let base = run_huffman_sim(&data, &cfg(), &x86_smp(8), &arrival());
    let (base_bytes, base_bits) = output_of(&base);
    let threaded = run_huffman_threaded(&data, &cfg(), 4, &arrival(), 1000);
    assert_eq!(output_of(&threaded), (base_bytes, base_bits));
    for kill_at in [8usize, 32] {
        let dir = scratch_dir(&format!("thr-{kill_at}"));
        let mut c = cfg();
        c.checkpoint = Some(CheckpointConfig {
            every_blocks: 4,
            dir: dir.clone(),
            halt_at_block: Some(kill_at),
        });
        let snap =
            run_huffman_threaded_checkpointed(&data, &c, 4, &arrival(), 1000).into_snapshot();
        assert!(snap.prefix >= kill_at as u64);
        let resumed = resume_huffman_threaded(&snap, &data, &cfg(), 4, &arrival(), 1000)
            .expect("snapshot matches input and config");
        let (res_bytes, res_bits) = output_of(&resumed);
        assert_eq!(res_bits, base_bits, "kill at {kill_at}: bit length differs");
        assert_eq!(
            res_bytes, base_bytes,
            "kill at {kill_at}: resumed stream is not byte-identical"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn resume_never_re_speculates() {
    let data = stationary(64 * 1024);
    let dir = scratch_dir("nospec");
    let mut c = cfg();
    c.checkpoint = Some(CheckpointConfig {
        every_blocks: 4,
        dir: dir.clone(),
        halt_at_block: Some(16),
    });
    let snap = run_huffman_sim_checkpointed(&data, &c, &x86_smp(8), &arrival()).into_snapshot();
    assert!(snap.committed_version > 0, "halt implies a committed tree");
    let resumed =
        resume_huffman_sim(&snap, &data, &cfg(), &x86_smp(8), &arrival()).expect("resumes");
    let stats = resumed.result.spec_stats.expect("policy speculates");
    assert_eq!(stats.predictions, 0, "resume must not predict again");
    assert_eq!(stats.rollbacks, 0, "resume must not roll back");
    assert_eq!(
        resumed.result.committed_version.map(u64::from),
        Some(snap.committed_version),
        "the snapshot's committed version carries through"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_rejects_mismatched_input_and_config() {
    let data = stationary(32 * 1024);
    let dir = scratch_dir("mismatch");
    let mut c = cfg();
    c.checkpoint = Some(CheckpointConfig {
        every_blocks: 4,
        dir: dir.clone(),
        halt_at_block: Some(8),
    });
    let snap = run_huffman_sim_checkpointed(&data, &c, &x86_smp(8), &arrival()).into_snapshot();

    // Wrong input bytes: one bit flipped past the committed prefix.
    let mut other = data.clone();
    let last = other.len() - 1;
    other[last] ^= 0x40;
    assert_eq!(
        resume_huffman_sim(&snap, &other, &cfg(), &x86_smp(8), &arrival()).err(),
        Some(ResumeError::InputMismatch)
    );

    // Wrong output shape: a different tolerance changes the digest.
    let mut reshaped = cfg();
    reshaped.tolerance = tvs_core::Tolerance::percent(5.0);
    assert_eq!(
        resume_huffman_sim(&snap, &data, &reshaped, &x86_smp(8), &arrival()).err(),
        Some(ResumeError::InputMismatch)
    );

    // A truncated snapshot file is a structured load error, not a panic.
    let path = CheckpointConfig::new(4, &dir).snapshot_path();
    let text = std::fs::read_to_string(&path).expect("snapshot persisted");
    std::fs::write(&path, &text[..text.len() / 2]).unwrap();
    assert!(StreamSnapshot::load(&path).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Adversarial drifting input: every block shifts the byte distribution,
/// so every prediction is stale by the time its check resolves.
fn drifting(n: usize) -> Vec<u8> {
    (0..n).map(|i| ((i / 1024) * 7 + i % 13) as u8).collect()
}

fn ladder_cfg() -> HuffmanConfig {
    let mut c = cfg();
    c.policy = DispatchPolicy::Aggressive;
    c.verification = tvs_core::VerificationPolicy::Full;
    c.tolerance = tvs_core::Tolerance { margin: 0.0 };
    c.breaker = Some(tvs_core::BreakerConfig {
        window: 4,
        min_samples: 2,
        trip_ratio: 0.5,
        cooldown: 1_000,
        probe_successes: 1,
    });
    c.ladder = Some(LadderConfig {
        window: 4,
        min_samples: 2,
        trip_ratio: 0.5,
        up_windows: 2,
        depth_cap: 1,
    });
    c
}

#[test]
fn ladder_steps_down_when_the_breaker_trips_sim() {
    let data = drifting(32 * 1024);
    let arrival = Uniform {
        gap_us: 100,
        start_us: 0,
    };
    let (out, log) = run_huffman_sim_events(&data, &ladder_cfg(), &x86_smp(8), &arrival);
    assert!(
        log.count("breaker-trip") >= 1,
        "100% misprediction must trip the breaker"
    );
    assert!(
        log.count("ladder-step") >= 1,
        "a tripped breaker must step the ladder down"
    );
    let stats = out.result.spec_stats.expect("speculative policy");
    assert!(stats.ladder_steps >= 1);
    assert_eq!(log.health().ladder_steps, stats.ladder_steps);
    // Degraded, not broken: the run still completes and decodes.
    let (bytes, bits, lengths) = out.result.output.as_ref().expect("output collected");
    let table = tvs_huffman::CodeTable::from_lengths(lengths);
    let decoded = decode_exact(bytes, 0, *bits, data.len(), &table).expect("stream decodes");
    assert_eq!(decoded, data);
}

#[test]
fn ladder_steps_down_when_the_breaker_trips_threaded() {
    let data = drifting(32 * 1024);
    let arrival = Uniform {
        gap_us: 100,
        start_us: 0,
    };
    let (out, log) = run_huffman_threaded_events(&data, &ladder_cfg(), 4, &arrival, 100);
    let stats = out.result.spec_stats.expect("speculative policy");
    assert!(
        stats.ladder_steps >= 1,
        "sustained misprediction must step the ladder down on real threads \
         (breaker trips: {}, checks failed: {})",
        log.count("breaker-trip"),
        stats.checks_failed,
    );
    let (bytes, bits, lengths) = out.result.output.as_ref().expect("output collected");
    let table = tvs_huffman::CodeTable::from_lengths(lengths);
    let decoded = decode_exact(bytes, 0, *bits, data.len(), &table).expect("stream decodes");
    assert_eq!(decoded, data);
}

#[test]
fn supervised_run_rejects_duplicate_completions_instead_of_double_committing() {
    // The acceptance scenario: duplicate completion reports injected into
    // a supervised threaded run must take the epoch-reject path — visible
    // in `stale_completions_rejected` — and leave the output stream
    // byte-identical to a clean run.
    let data = stationary(64 * 1024);
    let base = run_huffman_sim(&data, &cfg(), &x86_smp(8), &arrival());
    let (base_bytes, base_bits) = output_of(&base);
    let mut tcfg = ThreadedConfig::new(4, DispatchPolicy::Balanced);
    tcfg.supervisor = Some(tvs_sre::SupervisorConfig::default());
    tcfg.faults = FaultInjector::new(
        FaultPlan::new(7)
            .with_rule(FaultSite::Completion, FaultKind::DuplicateCompletion, 1.0)
            .with_max_faults(12),
    );
    let (out, _log) = run_huffman_threaded_chaos(&data, &cfg(), &tcfg, &arrival(), 1000)
        .expect("duplicate echoes are recoverable");
    assert!(
        out.metrics.stale_completions_rejected > 0,
        "the epoch-reject path must actually be taken"
    );
    assert_eq!(
        out.metrics.duplicate_completions, 0,
        "no echo may reach the commit path"
    );
    assert_eq!(output_of(&out), (base_bytes, base_bits));
}
