//! The real thread-pool executor: correctness under actual concurrency.

use std::sync::Arc;
use tvs_huffman::{decode_exact, serial_encode, CodeTable};
use tvs_iosim::Uniform;
use tvs_pipelines::config::HuffmanConfig;
use tvs_pipelines::huffman::HuffmanWorkload;
use tvs_pipelines::runner::run_huffman_threaded;
use tvs_sre::exec::threaded::{run as run_threaded, ThreadedConfig};
use tvs_sre::DispatchPolicy;
use tvs_workloads::FileKind;

fn small_cfg(policy: DispatchPolicy) -> HuffmanConfig {
    HuffmanConfig {
        block_bytes: 2048,
        reduce_ratio: 4,
        offset_fanout: 8,
        collect_output: true,
        ..HuffmanConfig::disk_x86(policy)
    }
}

fn check_output(data: &[u8], result: &tvs_pipelines::PipelineResult) {
    let (bytes, bits, lengths) = result.output.as_ref().expect("collected");
    let table = CodeTable::from_lengths(lengths);
    let decoded = decode_exact(bytes, 0, *bits, data.len(), &table).expect("decodes");
    assert_eq!(decoded, data);
}

#[test]
fn threaded_non_spec_matches_serial() {
    let data = tvs_workloads::generate(FileKind::Text, 256 * 1024, 21);
    let out = run_huffman_threaded(
        &data,
        &small_cfg(DispatchPolicy::NonSpeculative),
        4,
        &Uniform {
            gap_us: 0,
            start_us: 0,
        },
        1,
    );
    check_output(&data, &out.result);
    let serial = serial_encode(&data).unwrap();
    assert_eq!(out.result.compressed_bits, serial.bit_len);
}

#[test]
fn threaded_speculative_commits_and_decodes() {
    let data = tvs_workloads::generate(FileKind::Text, 256 * 1024, 22);
    let out = run_huffman_threaded(
        &data,
        &small_cfg(DispatchPolicy::Balanced),
        4,
        &Uniform {
            gap_us: 50,
            start_us: 0,
        },
        1,
    );
    check_output(&data, &out.result);
    assert!(out.result.spec_stats.is_some());
}

#[test]
fn threaded_rollbacks_are_safe() {
    // Drifting data under aggressive speculation with full verification:
    // rollbacks race real in-flight tasks.
    let mut data = vec![b'x'; 128 * 1024];
    data.extend((0..128 * 1024u32).map(|i| 128 + (i % 100) as u8));
    let mut cfg = small_cfg(DispatchPolicy::Aggressive);
    cfg.verification = tvs_core::VerificationPolicy::Full;
    cfg.schedule = tvs_core::SpeculationSchedule::with_step(1);
    let out = run_huffman_threaded(
        &data,
        &cfg,
        8,
        &Uniform {
            gap_us: 20,
            start_us: 0,
        },
        1,
    );
    check_output(&data, &out.result);
    assert_eq!(out.result.blocks.len(), 128);
}

#[test]
fn threaded_repeated_runs_converge_to_same_content() {
    // Scheduling is nondeterministic; committed content must not be.
    let data = tvs_workloads::generate(FileKind::Bmp, 128 * 1024, 23);
    let mut sizes = std::collections::HashSet::new();
    for _ in 0..3 {
        let out = run_huffman_threaded(
            &data,
            &small_cfg(DispatchPolicy::NonSpeculative),
            4,
            &Uniform {
                gap_us: 0,
                start_us: 0,
            },
            1,
        );
        check_output(&data, &out.result);
        sizes.insert(out.result.compressed_bits);
    }
    assert_eq!(
        sizes.len(),
        1,
        "non-speculative content must be identical across runs"
    );
}

#[test]
fn worker_counts_from_one_to_sixteen() {
    let data = tvs_workloads::generate(FileKind::Text, 64 * 1024, 24);
    for workers in [1usize, 2, 16] {
        let out = run_huffman_threaded(
            &data,
            &small_cfg(DispatchPolicy::Balanced),
            workers,
            &Uniform {
                gap_us: 0,
                start_us: 0,
            },
            1,
        );
        check_output(&data, &out.result);
        assert_eq!(out.metrics.workers, workers);
    }
}

#[test]
fn raw_executor_api_with_custom_feeder() {
    // Drive the executor directly (no runner sugar): feeder pacing via a
    // plain iterator of blocks.
    let data = tvs_workloads::generate(FileKind::Pdf, 64 * 1024, 25);
    let cfg = small_cfg(DispatchPolicy::Balanced);
    let wl = HuffmanWorkload::new(cfg.clone(), data.len());
    let blocks: Vec<(usize, Arc<[u8]>)> = data
        .chunks(cfg.block_bytes)
        .enumerate()
        .map(|(i, c)| (i, Arc::<[u8]>::from(c)))
        .collect();
    let (wl, metrics) = run_threaded(wl, &ThreadedConfig::new(4, cfg.policy), blocks);
    let result = wl.result();
    check_output(&data, &result);
    assert!(metrics.tasks_delivered > 0);
    assert!(metrics.busy_us > 0);
}
