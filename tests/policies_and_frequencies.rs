//! The paper's qualitative claims about dispatch policies, speculation
//! frequency, verification frequency and tolerance — asserted as tests.

use tvs_core::{SpeculationSchedule, Tolerance, VerificationPolicy};
use tvs_iosim::Disk;
use tvs_pipelines::config::HuffmanConfig;
use tvs_pipelines::runner::{run_huffman_sim, RunOutcome};
use tvs_sre::{cell_be, x86_smp, DispatchPolicy, Platform};
use tvs_workloads::FileKind;

const SEED: u64 = 2011; // the figure benches' seed

fn run(data: &[u8], cfg: &HuffmanConfig, platform: &Platform) -> RunOutcome {
    run_huffman_sim(data, cfg, platform, &Disk::default())
}

#[test]
fn speculation_beats_non_speculative_on_stationary_text() {
    // The headline effect: latency and completion both improve.
    let data = tvs_workloads::generate_paper_sized(FileKind::Text, SEED);
    let x86 = x86_smp(16);
    let base = run(
        &data,
        &HuffmanConfig::disk_x86(DispatchPolicy::NonSpeculative),
        &x86,
    );
    for policy in [
        DispatchPolicy::Balanced,
        DispatchPolicy::Aggressive,
        DispatchPolicy::Conservative,
    ] {
        let out = run(&data, &HuffmanConfig::disk_x86(policy), &x86);
        assert_eq!(
            out.metrics.rollbacks, 0,
            "{policy:?}: text must not roll back"
        );
        let lat_gain = 1.0 - out.mean_latency() / base.mean_latency();
        let time_gain = 1.0 - out.completion_time() as f64 / base.completion_time() as f64;
        assert!(lat_gain > 0.25, "{policy:?}: latency gain {lat_gain}");
        assert!(time_gain > 0.10, "{policy:?}: completion gain {time_gain}");
    }
}

#[test]
fn balanced_is_resilient_to_rollbacks_aggressive_is_not() {
    // Fig. 3c: "conservative and balanced policies generally perform
    // better in the PDF case ... being aggressive can be a good choice
    // when no rollbacks occur".
    let data = tvs_workloads::generate_paper_sized(FileKind::Pdf, SEED);
    let x86 = x86_smp(16);
    let base = run(
        &data,
        &HuffmanConfig::disk_x86(DispatchPolicy::NonSpeculative),
        &x86,
    );
    let balanced = run(
        &data,
        &HuffmanConfig::disk_x86(DispatchPolicy::Balanced),
        &x86,
    );
    let aggressive = run(
        &data,
        &HuffmanConfig::disk_x86(DispatchPolicy::Aggressive),
        &x86,
    );
    assert!(
        balanced.metrics.rollbacks > 0,
        "PDF must roll back under the baseline step"
    );
    assert!(
        balanced.mean_latency() < base.mean_latency(),
        "balanced stays ahead of non-spec despite rollbacks"
    );
    assert!(
        aggressive.mean_latency() > balanced.mean_latency() * 1.2,
        "aggressive pays heavily for rollbacks: {} vs {}",
        aggressive.mean_latency(),
        balanced.mean_latency()
    );
}

#[test]
fn conservative_degenerates_to_non_spec_on_cell() {
    // Fig. 4: "a rather poor performance by the conservative policy ...
    // little speculation is done overall" on the deep-prefetch Cell.
    let data = tvs_workloads::generate_paper_sized(FileKind::Text, SEED);
    let cell = cell_be(16);
    let base = run(
        &data,
        &HuffmanConfig::disk_cell(DispatchPolicy::NonSpeculative),
        &cell,
    );
    let cons = run(
        &data,
        &HuffmanConfig::disk_cell(DispatchPolicy::Conservative),
        &cell,
    );
    let bal = run(
        &data,
        &HuffmanConfig::disk_cell(DispatchPolicy::Balanced),
        &cell,
    );
    let cons_gain = 1.0 - cons.mean_latency() / base.mean_latency();
    let bal_gain = 1.0 - bal.mean_latency() / base.mean_latency();
    assert!(
        cons_gain < 0.05,
        "conservative must barely speculate on Cell: gain {cons_gain}"
    );
    assert!(
        bal_gain > 0.15,
        "balanced must stay effective on Cell: gain {bal_gain}"
    );
}

#[test]
fn step_size_threshold_for_bmp_is_eight() {
    // Fig. 5b: rollbacks below step 8, none at 8.
    let data = tvs_workloads::generate_paper_sized(FileKind::Bmp, SEED);
    let x86 = x86_smp(16);
    for step in [1u64, 2, 4] {
        let mut cfg = HuffmanConfig::disk_x86(DispatchPolicy::Balanced);
        cfg.schedule = SpeculationSchedule::with_step(step);
        let out = run(&data, &cfg, &x86);
        assert!(out.metrics.rollbacks > 0, "BMP step {step} must roll back");
    }
    let mut cfg = HuffmanConfig::disk_x86(DispatchPolicy::Balanced);
    cfg.schedule = SpeculationSchedule::with_step(8);
    let at_threshold = run(&data, &cfg, &x86);
    assert_eq!(
        at_threshold.metrics.rollbacks, 0,
        "BMP step 8 is the paper's threshold"
    );
    // The latency drop at the threshold is significant.
    cfg.schedule = SpeculationSchedule::with_step(4);
    let below = run(&data, &cfg, &x86);
    assert!(
        at_threshold.mean_latency() < below.mean_latency() * 0.95,
        "threshold must drop latency: {} vs {}",
        at_threshold.mean_latency(),
        below.mean_latency()
    );
}

#[test]
fn step_size_threshold_for_pdf_is_sixteen() {
    // Fig. 5c: rollbacks below step 16, none at 16.
    let data = tvs_workloads::generate_paper_sized(FileKind::Pdf, SEED);
    let x86 = x86_smp(16);
    for step in [2u64, 4, 8] {
        let mut cfg = HuffmanConfig::disk_x86(DispatchPolicy::Balanced);
        cfg.schedule = SpeculationSchedule::with_step(step);
        let out = run(&data, &cfg, &x86);
        assert!(out.metrics.rollbacks > 0, "PDF step {step} must roll back");
    }
    let mut cfg = HuffmanConfig::disk_x86(DispatchPolicy::Balanced);
    cfg.schedule = SpeculationSchedule::with_step(16);
    let out = run(&data, &cfg, &x86);
    assert_eq!(
        out.metrics.rollbacks, 0,
        "PDF step 16 is the paper's threshold"
    );
}

#[test]
fn larger_steps_hurt_text_latency() {
    // Fig. 5a: "there is a drop in efficiency as [steps] get larger" —
    // speculation starts later, delaying data processing.
    let data = tvs_workloads::generate_paper_sized(FileKind::Text, SEED);
    let x86 = x86_smp(16);
    let lat_at = |step: u64| {
        let mut cfg = HuffmanConfig::disk_x86(DispatchPolicy::Balanced);
        cfg.schedule = SpeculationSchedule::with_step(step);
        run(&data, &cfg, &x86).mean_latency()
    };
    let (small, large) = (lat_at(2), lat_at(32));
    assert!(
        large > small * 1.1,
        "step 32 ({large}) must lag step 2 ({small})"
    );
}

#[test]
fn check_overhead_is_low_without_rollbacks() {
    // Fig. 6: "the small difference between fully speculative and
    // optimistic policies indicates that check tasks cause low overhead".
    let data = tvs_workloads::generate_paper_sized(FileKind::Text, SEED);
    let x86 = x86_smp(16);
    let mut optimistic = HuffmanConfig::disk_x86(DispatchPolicy::Balanced);
    optimistic.verification = VerificationPolicy::Optimistic;
    optimistic.schedule = SpeculationSchedule::with_step(1);
    let mut full = optimistic.clone();
    full.verification = VerificationPolicy::Full;
    let o = run(&data, &optimistic, &x86);
    let f = run(&data, &full, &x86);
    assert_eq!(o.metrics.rollbacks, 0);
    assert_eq!(f.metrics.rollbacks, 0);
    let diff = (f.mean_latency() - o.mean_latency()).abs() / o.mean_latency();
    assert!(
        diff < 0.05,
        "full vs optimistic differ by {diff} — checks should be cheap"
    );
}

#[test]
fn optimistic_pays_dearly_for_rollbacks() {
    // Fig. 6c: with rollbacks "a large amount of computation has to be
    // re-started" in the optimistic case.
    let data = tvs_workloads::generate_paper_sized(FileKind::Pdf, SEED);
    let x86 = x86_smp(16);
    let base = run(
        &data,
        &HuffmanConfig::disk_x86(DispatchPolicy::NonSpeculative),
        &x86,
    );
    let mut optimistic = HuffmanConfig::disk_x86(DispatchPolicy::Balanced);
    optimistic.verification = VerificationPolicy::Optimistic;
    optimistic.schedule = SpeculationSchedule::with_step(1);
    let o = run(&data, &optimistic, &x86);
    assert!(
        o.metrics.rollbacks > 0,
        "optimistic on PDF must fail its single check"
    );
    assert!(
        o.mean_latency() > base.mean_latency() * 0.95,
        "optimistic-with-rollback ends up near non-spec: {} vs {}",
        o.mean_latency(),
        base.mean_latency()
    );
}

#[test]
fn raising_tolerance_can_hurt_before_it_helps() {
    // Fig. 9: 1% -> 2% performs *worse* (late detection); 5% removes
    // rollbacks entirely and is optimal.
    let data = tvs_workloads::generate_paper_sized(FileKind::Pdf, SEED);
    let x86 = x86_smp(16);
    let lat_at = |pct: f64| {
        let mut cfg = HuffmanConfig::disk_x86(DispatchPolicy::Aggressive);
        cfg.tolerance = Tolerance::percent(pct);
        cfg.schedule = SpeculationSchedule::with_step(2);
        run(&data, &cfg, &x86)
    };
    let (one, two, five) = (lat_at(1.0), lat_at(2.0), lat_at(5.0));
    assert!(
        two.mean_latency() > one.mean_latency() * 1.1,
        "2% must be worse than 1%: {} vs {}",
        two.mean_latency(),
        one.mean_latency()
    );
    assert_eq!(five.metrics.rollbacks, 0, "5% must remove all rollbacks");
    assert!(
        five.mean_latency() < one.mean_latency() * 0.75,
        "5% must be the best case: {} vs {}",
        five.mean_latency(),
        one.mean_latency()
    );
}

#[test]
fn tolerance_trades_compression_for_speed() {
    // The paper's §IV tradeoff: "an interesting tradeoff between
    // compression efficiency and speed" — a committed high-tolerance tree
    // is valid but less optimal.
    let data = tvs_workloads::generate_paper_sized(FileKind::Pdf, SEED);
    let x86 = x86_smp(16);
    let mut cfg = HuffmanConfig::disk_x86(DispatchPolicy::Balanced);
    cfg.tolerance = Tolerance::percent(5.0);
    let tolerant = run(&data, &cfg, &x86);
    let base = run(
        &data,
        &HuffmanConfig::disk_x86(DispatchPolicy::NonSpeculative),
        &x86,
    );
    assert!(tolerant.result.committed_version.is_some());
    let excess = tolerant.result.compressed_bits as f64 / base.result.compressed_bits as f64 - 1.0;
    assert!(
        excess > 0.0,
        "a tolerant commit should cost some compression"
    );
    assert!(
        excess <= 0.05 + 1e-9,
        "but stay within the declared margin: {excess}"
    );
}
