//! Live-metrics-plane invariants across the executors.
//!
//! * Concurrent incrementers racing a snapshotting sampler never lose or
//!   double-count: the sum of all per-snapshot deltas plus the residual
//!   equals exactly what the incrementers wrote.
//! * The deterministic simulator's virtual-time snapshots are
//!   byte-deterministic: the same seed yields an identical JSONL stream.
//! * RunMetrics is a view of the registry (no double counting): the
//!   threaded executor's per-lane dispatch counts come from the hub.
//! * Snapshot JSONL round-trips losslessly, and the Prometheus exposition
//!   carries the totals.

use std::time::Duration;
use tvs_iosim::Uniform;
use tvs_metrics::{Counter, Gauge, Hist};
use tvs_pipelines::config::HuffmanConfig;
use tvs_pipelines::runner::{run_huffman_sim_metered, run_huffman_threaded_metered};
use tvs_sre::{x86_smp, DispatchPolicy, MetricsHub, MetricsSnapshot, Sampler};
use tvs_workloads::FileKind;

fn data() -> Vec<u8> {
    let mut d = tvs_workloads::generate(FileKind::Text, 32 * 1024, 7);
    d.extend(tvs_workloads::generate(FileKind::Pdf, 32 * 1024, 7));
    d
}

fn cfg(policy: DispatchPolicy) -> HuffmanConfig {
    let mut c = HuffmanConfig::disk_x86(policy);
    c.schedule = tvs_core::SpeculationSchedule::with_step(0);
    c
}

fn arrival() -> Uniform {
    Uniform {
        gap_us: 2,
        start_us: 0,
    }
}

#[test]
fn concurrent_incrementers_race_sampler_without_loss() {
    // 4 writer threads hammer their shards while a 1 ms sampler snapshots
    // concurrently. Afterwards: sum(deltas over all snapshots) + residual
    // delta == total written. Any lost or double-counted increment breaks
    // the equality.
    const WRITERS: usize = 4;
    const PER_WRITER: u64 = 200_000;
    let hub = MetricsHub::enabled(WRITERS);
    let mut seen_deltas: Vec<u64> = Vec::new();
    let (tx, rx) = std::sync::mpsc::channel::<MetricsSnapshot>();
    let sampler = Sampler::spawn(hub.clone(), Duration::from_millis(1), move |snap| {
        tx.send(snap).expect("test alive");
    });
    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let hub = hub.clone();
            std::thread::spawn(move || {
                for i in 0..PER_WRITER {
                    hub.add(w, Counter::TasksDelivered, 1);
                    if i % 64 == 0 {
                        hub.record(Hist::BlockServiceUs, i % 1000);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("writer");
    }
    sampler.stop(); // takes one final snapshot through the sink
    while let Ok(snap) = rx.try_recv() {
        seen_deltas.push(snap.counter(Counter::TasksDelivered).delta);
    }
    let expected = WRITERS as u64 * PER_WRITER;
    let from_deltas: u64 = seen_deltas.iter().sum();
    assert_eq!(
        from_deltas,
        expected,
        "snapshot deltas must partition the counter stream exactly \
         ({} snapshots)",
        seen_deltas.len()
    );
    assert_eq!(hub.counter_total(Counter::TasksDelivered), expected);
    let final_snap = hub.snapshot().expect("live hub");
    assert_eq!(final_snap.counter(Counter::TasksDelivered).delta, 0);
    assert_eq!(final_snap.counter(Counter::TasksDelivered).total, expected);
}

#[test]
fn sim_virtual_snapshots_are_byte_deterministic() {
    // The same input, config and virtual sampling tick must serialise to
    // an identical JSONL byte stream on every run — snapshots are stamped
    // by the virtual clock, not the wall clock.
    let d = data();
    let run = || -> String {
        let hub = MetricsHub::enabled(8);
        hub.enable_virtual_sampling(1_000);
        let _ = run_huffman_sim_metered(
            &d,
            &cfg(DispatchPolicy::Aggressive),
            &x86_smp(8),
            &arrival(),
            hub.clone(),
        );
        hub.drain_virtual_snapshots()
            .iter()
            .map(|s| s.to_json_line())
            .collect::<Vec<_>>()
            .join("\n")
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty(), "virtual sampling produced snapshots");
    assert_eq!(a, b, "same seed must give identical JSONL bytes");
    // And the stream actually observed the speculation lifecycle.
    let last = MetricsSnapshot::from_json_line(a.lines().last().expect("non-empty"))
        .expect("last line parses");
    assert!(last.counter(Counter::Predictions).total > 0);
    assert!(last.counter(Counter::TasksDelivered).total > 0);
    assert!(
        last.counter(Counter::Commits).total + last.counter(Counter::Rollbacks).total > 0,
        "every speculative run ends in a commit or rollback"
    );
}

#[test]
fn sim_metering_does_not_perturb_results() {
    let d = data();
    for policy in DispatchPolicy::ALL {
        let c = cfg(policy);
        let plain = tvs_pipelines::runner::run_huffman_sim(&d, &c, &x86_smp(8), &arrival());
        let hub = MetricsHub::enabled(8);
        hub.enable_virtual_sampling(1_000);
        let metered = run_huffman_sim_metered(&d, &c, &x86_smp(8), &arrival(), hub);
        assert_eq!(plain.metrics, metered.metrics, "{}", policy.label());
        assert_eq!(plain.latencies(), metered.latencies(), "{}", policy.label());
    }
}

#[test]
fn threaded_run_metrics_is_a_registry_view() {
    // Satellite 3: lane dispatches/steals live in the hub only; RunMetrics
    // reads them back, so the two can never diverge.
    let d = data();
    let hub = MetricsHub::enabled(4);
    let out = run_huffman_threaded_metered(
        &d,
        &cfg(DispatchPolicy::Aggressive),
        4,
        &arrival(),
        1000,
        hub.clone(),
    );
    assert_eq!(
        out.metrics.lane_dispatches,
        hub.lane_counts(Counter::LaneDispatch),
        "RunMetrics lane dispatches are the hub's cells"
    );
    assert_eq!(out.metrics.steals, hub.counter_total(Counter::Steal));
    assert_eq!(
        out.metrics.tasks_delivered,
        hub.counter_total(Counter::TasksDelivered)
    );
    assert_eq!(out.metrics.rollbacks, hub.counter_total(Counter::Rollbacks));
    // Manager counters flowed into the same registry.
    let stats = out.result.spec_stats.expect("speculative run");
    assert_eq!(stats.predictions, hub.counter_total(Counter::Predictions));
    assert_eq!(
        stats.checks_failed,
        hub.counter_total(Counter::ChecksFailed)
    );
    // The workload published its encode-pool gauges.
    let a = out.result.alloc_stats;
    assert_eq!(hub.gauge_get(Gauge::AllocHeap), a.heap_allocs);
    assert_eq!(hub.gauge_get(Gauge::AllocReuse), a.reuses);
}

#[test]
fn profiler_clocks_and_lineage_gauges_populate() {
    // Flight recorder: the worker time-accounting clocks and the
    // manager's lineage gauges feed the same registry on both executors.
    // Body time is charged to exactly one of the run/check clocks, so
    // together they must equal the busy total the executors already
    // report — a cheap conservation invariant over the new counters.
    let d = data();
    let hub = MetricsHub::enabled(4);
    let _ = run_huffman_threaded_metered(
        &d,
        &cfg(DispatchPolicy::Aggressive),
        4,
        &arrival(),
        1000,
        hub.clone(),
    );
    assert!(hub.counter_total(Counter::TimeRunUs) > 0, "run clock ticks");
    assert_eq!(
        hub.counter_total(Counter::TimeRunUs) + hub.counter_total(Counter::TimeCheckUs),
        hub.counter_total(Counter::BusyUs),
        "threaded: body time lands in exactly one state clock"
    );

    let hub2 = MetricsHub::enabled(8);
    let _ = run_huffman_sim_metered(
        &d,
        &cfg(DispatchPolicy::Aggressive),
        &x86_smp(8),
        &arrival(),
        hub2.clone(),
    );
    assert_eq!(
        hub2.counter_total(Counter::TimeRunUs) + hub2.counter_total(Counter::TimeCheckUs),
        hub2.counter_total(Counter::BusyUs),
        "sim: body time lands in exactly one state clock"
    );
    assert!(
        hub2.gauge_get(Gauge::LineageRoots) > 0,
        "a speculative run opens at least one lineage root"
    );
}

#[test]
fn snapshot_jsonl_round_trips_and_prometheus_exposes_totals() {
    let d = data();
    let hub = MetricsHub::enabled(8);
    hub.enable_virtual_sampling(1_000);
    let _ = run_huffman_sim_metered(
        &d,
        &cfg(DispatchPolicy::Balanced),
        &x86_smp(8),
        &arrival(),
        hub.clone(),
    );
    let snaps = hub.drain_virtual_snapshots();
    assert!(!snaps.is_empty());
    for s in &snaps {
        let line = s.to_json_line();
        let back = MetricsSnapshot::from_json_line(&line).expect("parses");
        assert_eq!(back.to_json_line(), line, "lossless round-trip");
    }
    let last = snaps.last().expect("non-empty");
    let prom = last.to_prometheus();
    assert!(prom.contains(&format!(
        "tvs_tasks_delivered_total {}",
        last.counter(Counter::TasksDelivered).total
    )));
    assert!(prom.contains("tvs_lane_dispatch_total{lane=\"0\"}"));
    assert!(prom.contains("tvs_waste_ratio"));
    assert!(prom.contains("tvs_block_service_us_bucket"));
}
