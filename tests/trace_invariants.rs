//! Cross-executor speculation-lifecycle invariants: whatever executor ran
//! the pipeline, the drained event log must agree with the run's
//! [`RunMetrics`], every opened version must resolve exactly once, and
//! enabling tracing must not change the run's results.

use std::collections::HashMap;
use std::sync::Arc;
use tvs_iosim::Uniform;
use tvs_pipelines::config::HuffmanConfig;
use tvs_pipelines::huffman::HuffmanWorkload;
use tvs_pipelines::runner::{run_huffman_sim, run_huffman_sim_events, run_huffman_threaded_events};
use tvs_sre::exec::baseline;
use tvs_sre::exec::threaded::ThreadedConfig;
use tvs_sre::{x86_smp, DispatchPolicy, RunMetrics, TraceLog, Tracer};
use tvs_trace::EventKind;
use tvs_workloads::FileKind;

/// Text then PDF: the symbol-distribution shift makes step-0 predictions
/// fail the tolerance check partway through, so runs exercise rollback,
/// cascade deletion and discarded work — not just the happy path.
fn data() -> Vec<u8> {
    let mut d = tvs_workloads::generate(FileKind::Text, 32 * 1024, 7);
    d.extend(tvs_workloads::generate(FileKind::Pdf, 32 * 1024, 7));
    d
}

/// Step 0 predicts from the very first block, so the small test input
/// still runs the full speculation lifecycle.
fn cfg(policy: DispatchPolicy) -> HuffmanConfig {
    let mut c = HuffmanConfig::disk_x86(policy);
    c.schedule = tvs_core::SpeculationSchedule::with_step(0);
    c
}

fn arrival() -> Uniform {
    Uniform {
        gap_us: 2,
        start_us: 0,
    }
}

/// The lifecycle invariants every executor must uphold:
///
/// 1. Each version opens at most once, and every opened version resolves
///    in *exactly one* commit or rollback. (A rollback without a prior
///    open is legal — a prediction can be killed before installation
///    claims a version-open event — but a commit is not.)
/// 2. Trace rollbacks match `metrics.rollbacks`.
/// 3. Cascade depths account for the scheduler's ready-queue deletions:
///    `sum(cascade_depth) + count(cancel-ready) == tasks_deleted_ready`.
fn assert_lifecycle(log: &TraceLog, metrics: &RunMetrics) {
    assert_eq!(log.dropped, 0, "rings must not overflow in tests");
    assert_eq!(
        log.dropped_per_worker.len(),
        log.workers + 1,
        "one drop counter per worker ring plus the control ring"
    );
    for (ring, d) in log.dropped_per_worker.iter().enumerate() {
        assert_eq!(*d, 0, "ring {ring} dropped events in a deterministic run");
    }
    let mut opened: HashMap<u32, u64> = HashMap::new();
    let mut committed: HashMap<u32, u64> = HashMap::new();
    let mut rolled: HashMap<u32, u64> = HashMap::new();
    let mut cascade_sum = 0u64;
    let mut cancels = 0u64;
    for e in &log.events {
        match &e.kind {
            EventKind::VersionOpen { version, .. } => *opened.entry(*version).or_default() += 1,
            EventKind::Commit { version } => *committed.entry(*version).or_default() += 1,
            EventKind::Rollback {
                version,
                cascade_depth,
            } => {
                *rolled.entry(*version).or_default() += 1;
                cascade_sum += cascade_depth;
            }
            EventKind::CancelReady { .. } => cancels += 1,
            _ => {}
        }
    }
    for (v, n) in &opened {
        assert_eq!(*n, 1, "version {v} opened more than once");
        let c = committed.get(v).copied().unwrap_or(0);
        let r = rolled.get(v).copied().unwrap_or(0);
        assert_eq!(
            c + r,
            1,
            "version {v} must resolve exactly once (commits {c}, rollbacks {r})"
        );
    }
    for v in committed.keys() {
        assert!(
            opened.contains_key(v),
            "version {v} committed but never opened"
        );
    }
    for (v, n) in &rolled {
        assert_eq!(*n, 1, "version {v} rolled back more than once");
    }
    assert_eq!(
        rolled.values().sum::<u64>(),
        metrics.rollbacks,
        "trace rollbacks match RunMetrics"
    );
    assert_eq!(
        cascade_sum + cancels,
        metrics.tasks_deleted_ready,
        "cascade depths + bound cancellations account for deleted-ready tasks"
    );
}

#[test]
fn sim_upholds_lifecycle_invariants_for_every_policy() {
    let d = data();
    for policy in DispatchPolicy::ALL {
        let (out, log) = run_huffman_sim_events(&d, &cfg(policy), &x86_smp(8), &arrival());
        assert_lifecycle(&log, &out.metrics);
        if policy.speculates() {
            assert!(
                log.health().versions_opened > 0,
                "{}: speculation must actually run",
                policy.label()
            );
        }
    }
}

#[test]
fn tracing_does_not_perturb_sim_results() {
    // The deterministic executor must produce byte-identical metrics and
    // latencies whether or not an event log is being recorded.
    let d = data();
    for policy in DispatchPolicy::ALL {
        let c = cfg(policy);
        let plain = run_huffman_sim(&d, &c, &x86_smp(8), &arrival());
        let (traced, _) = run_huffman_sim_events(&d, &c, &x86_smp(8), &arrival());
        assert_eq!(plain.metrics, traced.metrics, "{}", policy.label());
        assert_eq!(plain.latencies(), traced.latencies(), "{}", policy.label());
    }
}

#[test]
fn threaded_upholds_lifecycle_invariants() {
    let d = data();
    let (out, log) =
        run_huffman_threaded_events(&d, &cfg(DispatchPolicy::Aggressive), 4, &arrival(), 1000);
    assert_lifecycle(&log, &out.metrics);
    assert_eq!(log.count("task-end"), log.count("task-start"));
    assert_eq!(
        log.count("task-end") as u64,
        out.metrics.tasks_delivered + out.metrics.tasks_discarded,
        "every executed task leaves a span"
    );
}

#[test]
fn baseline_upholds_lifecycle_invariants() {
    let d = data();
    let c = cfg(DispatchPolicy::Aggressive);
    let tracer = Tracer::enabled(4);
    let mut wl = HuffmanWorkload::new(c.clone(), d.len());
    wl.set_tracer(tracer.clone());
    let blocks: Vec<(usize, Arc<[u8]>)> = d
        .chunks(c.block_bytes)
        .enumerate()
        .map(|(i, chunk)| (i, Arc::<[u8]>::from(chunk)))
        .collect();
    let tcfg = ThreadedConfig::new(4, c.policy);
    let (_, metrics) = baseline::run_traced(wl, &tcfg, blocks, tracer.clone());
    let log = tracer.drain().expect("enabled tracer drains");
    assert_lifecycle(&log, &metrics);
    assert_eq!(
        log.count("task-end") as u64,
        metrics.tasks_delivered + metrics.tasks_discarded,
        "every executed task leaves a span"
    );
    assert_eq!(
        log.count("steal"),
        0,
        "the baseline has no lanes to steal from"
    );
}
