//! End-to-end pipeline correctness across executors, inputs and
//! configurations.

use tvs_huffman::{decode_exact, serial_encode, CodeTable};
use tvs_iosim::{Disk, Uniform};
use tvs_pipelines::config::HuffmanConfig;
use tvs_pipelines::runner::{run_huffman_sim, run_huffman_threaded, RunOutcome};
use tvs_sre::{cell_be, x86_smp, DispatchPolicy};
use tvs_workloads::FileKind;

fn decode_and_check(out: &RunOutcome, input: &[u8]) {
    let (bytes, bits, lengths) = out.result.output.as_ref().expect("output collected");
    let table = CodeTable::from_lengths(lengths);
    let decoded = decode_exact(bytes, 0, *bits, input.len(), &table).expect("stream decodes");
    assert_eq!(decoded, input, "committed stream must decode to the input");
}

fn cfg(policy: DispatchPolicy) -> HuffmanConfig {
    HuffmanConfig {
        collect_output: true,
        ..HuffmanConfig::disk_x86(policy)
    }
}

#[test]
fn non_speculative_equals_serial_reference_on_all_kinds() {
    for kind in FileKind::ALL {
        let data = tvs_workloads::generate(kind, 1 << 20, 11);
        let out = run_huffman_sim(
            &data,
            &cfg(DispatchPolicy::NonSpeculative),
            &x86_smp(16),
            &Disk::default(),
        );
        decode_and_check(&out, &data);
        let serial = serial_encode(&data).unwrap();
        assert_eq!(
            out.result.compressed_bits, serial.bit_len,
            "{kind:?}: non-speculative output must match the serial reference"
        );
        assert_eq!(out.metrics.rollbacks, 0);
        assert_eq!(out.metrics.tasks_discarded, 0);
    }
}

#[test]
fn speculative_output_decodes_on_all_kinds_and_policies() {
    for kind in FileKind::ALL {
        let data = tvs_workloads::generate(kind, 1 << 20, 12);
        for policy in [
            DispatchPolicy::Balanced,
            DispatchPolicy::Aggressive,
            DispatchPolicy::Conservative,
        ] {
            let out = run_huffman_sim(&data, &cfg(policy), &x86_smp(16), &Disk::default());
            decode_and_check(&out, &data);
        }
    }
}

#[test]
fn committed_speculation_is_within_tolerance_of_optimal() {
    let data = tvs_workloads::generate(FileKind::Text, 2 << 20, 13);
    let out = run_huffman_sim(
        &data,
        &cfg(DispatchPolicy::Balanced),
        &x86_smp(16),
        &Disk::default(),
    );
    assert!(
        out.result.committed_version.is_some(),
        "stationary text must commit"
    );
    let serial = serial_encode(&data).unwrap();
    let excess = out.result.compressed_bits as f64 / serial.bit_len as f64 - 1.0;
    assert!(
        excess <= 0.01 + 1e-9,
        "committed stream exceeds the 1% tolerance: {excess}"
    );
}

#[test]
fn cell_platform_runs_all_kinds() {
    for kind in FileKind::ALL {
        let data = tvs_workloads::generate(kind, 1 << 20, 14);
        let c = HuffmanConfig {
            collect_output: true,
            ..HuffmanConfig::disk_cell(DispatchPolicy::Balanced)
        };
        let out = run_huffman_sim(&data, &c, &cell_be(16), &Disk::default());
        decode_and_check(&out, &data);
    }
}

#[test]
fn simulation_is_fully_deterministic() {
    let data = tvs_workloads::generate(FileKind::Pdf, 1 << 20, 15);
    let run = || {
        run_huffman_sim(
            &data,
            &cfg(DispatchPolicy::Aggressive),
            &x86_smp(16),
            &Disk::default(),
        )
    };
    let (a, b) = (run(), run());
    assert_eq!(a.latencies(), b.latencies());
    assert_eq!(a.completion_time(), b.completion_time());
    assert_eq!(a.metrics.rollbacks, b.metrics.rollbacks);
    assert_eq!(a.metrics.busy_us, b.metrics.busy_us);
    assert_eq!(a.result.compressed_bits, b.result.compressed_bits);
}

#[test]
fn threaded_and_sim_executors_produce_identical_streams() {
    // Timing differs wildly, but the committed *content* of a no-rollback
    // run is executor-independent.
    let data = tvs_workloads::generate(FileKind::Text, 256 * 1024, 16);
    let arrival = Uniform {
        gap_us: 1,
        start_us: 0,
    };
    let sim = run_huffman_sim(&data, &cfg(DispatchPolicy::Balanced), &x86_smp(8), &arrival);
    let thr = run_huffman_threaded(
        &data,
        &cfg(DispatchPolicy::Balanced),
        8,
        &arrival,
        1_000_000,
    );
    decode_and_check(&sim, &data);
    decode_and_check(&thr, &data);
}

#[test]
fn latency_series_is_complete_and_positive() {
    let data = tvs_workloads::generate(FileKind::Bmp, 1 << 20, 17);
    let out = run_huffman_sim(
        &data,
        &cfg(DispatchPolicy::Balanced),
        &x86_smp(16),
        &Disk::default(),
    );
    let lat = out.latencies();
    assert_eq!(lat.len(), 256, "one latency per 4 KB block");
    assert!(
        lat.iter().all(|&l| l > 0),
        "every block takes non-zero time"
    );
    assert_eq!(out.arrivals.len(), 256);
}

#[test]
fn compression_ratios_are_plausible_per_kind() {
    // Text compresses well; BMP (quantised texture) moderately; PDF-like
    // (high-entropy streams) least.
    let ratios: Vec<(FileKind, f64)> = FileKind::ALL
        .iter()
        .map(|&kind| {
            let data = tvs_workloads::generate(kind, 1 << 20, 18);
            let out = run_huffman_sim(
                &data,
                &cfg(DispatchPolicy::NonSpeculative),
                &x86_smp(16),
                &Disk::default(),
            );
            (kind, out.result.compression_ratio())
        })
        .collect();
    let get = |k: FileKind| ratios.iter().find(|(kk, _)| *kk == k).unwrap().1;
    assert!(
        get(FileKind::Text) > 1.5,
        "text ratio {}",
        get(FileKind::Text)
    );
    assert!(get(FileKind::Bmp) > 1.2, "bmp ratio {}", get(FileKind::Bmp));
    assert!(get(FileKind::Pdf) > 1.0, "pdf ratio {}", get(FileKind::Pdf));
    assert!(
        get(FileKind::Text) > get(FileKind::Pdf),
        "text must beat pdf"
    );
}

#[test]
fn tiny_inputs_work_end_to_end() {
    for len in [1usize, 100, 4096, 4097, 8192] {
        let data = tvs_workloads::generate(FileKind::Text, len, 19);
        let out = run_huffman_sim(
            &data,
            &cfg(DispatchPolicy::Balanced),
            &x86_smp(4),
            &Disk::default(),
        );
        decode_and_check(&out, &data);
        assert_eq!(out.result.blocks.len(), len.div_ceil(4096));
    }
}
