//! Speculation safety: no matter how wrong the predictions are or when
//! rollbacks strike, the committed output is always correct and every
//! block is finalised exactly once.

use tvs_core::{SpeculationSchedule, Tolerance, ValidationMode, VerificationPolicy};
use tvs_huffman::{decode_exact, serial_encode, CodeTable};
use tvs_iosim::{Custom, Disk, Uniform};
use tvs_pipelines::config::HuffmanConfig;
use tvs_pipelines::runner::{run_huffman_sim, RunOutcome};
use tvs_rng::cases;
use tvs_sre::{x86_smp, DispatchPolicy};

fn decode_and_check(out: &RunOutcome, input: &[u8]) {
    let (bytes, bits, lengths) = out.result.output.as_ref().expect("output collected");
    let table = CodeTable::from_lengths(lengths);
    let decoded = decode_exact(bytes, 0, *bits, input.len(), &table).expect("decodes");
    assert_eq!(decoded, input);
}

/// Drifting data guaranteed to trip 1 % checks: three regimes with very
/// different alphabets.
fn adversarial_data(n: usize) -> Vec<u8> {
    (0..n)
        .map(|i| {
            let frac = i as f64 / n as f64;
            if frac < 0.3 {
                b'a' + (i % 4) as u8
            } else if frac < 0.6 {
                128 + (i % 32) as u8
            } else {
                (i % 251) as u8
            }
        })
        .collect()
}

fn small_cfg(
    policy: DispatchPolicy,
    step: u64,
    verify: VerificationPolicy,
    tol: f64,
) -> HuffmanConfig {
    HuffmanConfig {
        block_bytes: 1024,
        reduce_ratio: 4,
        offset_fanout: 4,
        policy,
        schedule: SpeculationSchedule::with_step(step),
        verification: verify,
        tolerance: Tolerance { margin: tol },
        predictor: Default::default(),
        collect_output: true,
        breaker: None,
        validation: ValidationMode::Tolerance,
        checkpoint: None,
        ladder: None,
    }
}

#[test]
fn forced_rollbacks_still_produce_correct_output() {
    let data = adversarial_data(128 * 1024);
    let cfg = small_cfg(
        DispatchPolicy::Aggressive,
        1,
        VerificationPolicy::Full,
        0.01,
    );
    let out = run_huffman_sim(&data, &cfg, &x86_smp(8), &Disk::default());
    assert!(out.metrics.rollbacks > 0, "adversarial data must roll back");
    decode_and_check(&out, &data);
}

#[test]
fn zero_tolerance_rejects_and_recomputes_optimally() {
    let data = adversarial_data(64 * 1024);
    let cfg = small_cfg(DispatchPolicy::Balanced, 1, VerificationPolicy::Full, 0.0);
    let out = run_huffman_sim(&data, &cfg, &x86_smp(8), &Disk::default());
    assert_eq!(
        out.result.committed_version, None,
        "zero tolerance cannot commit drifted trees"
    );
    decode_and_check(&out, &data);
    let serial = serial_encode(&data).unwrap();
    assert_eq!(
        out.result.compressed_bits, serial.bit_len,
        "natural path must be optimal"
    );
}

#[test]
fn infinite_tolerance_always_commits_first_prediction() {
    let data = adversarial_data(64 * 1024);
    let cfg = small_cfg(
        DispatchPolicy::Balanced,
        1,
        VerificationPolicy::Full,
        f64::INFINITY,
    );
    let out = run_huffman_sim(&data, &cfg, &x86_smp(8), &Disk::default());
    assert_eq!(out.metrics.rollbacks, 0);
    assert_eq!(out.result.committed_version, Some(1));
    decode_and_check(&out, &data);
    // The price of infinite tolerance: compression may be far from optimal
    // but the output is still *valid* — the paper's key Huffman property.
    let serial = serial_encode(&data).unwrap();
    assert!(out.result.compressed_bits >= serial.bit_len);
}

#[test]
fn wasted_work_is_accounted_not_leaked() {
    let data = adversarial_data(128 * 1024);
    let cfg = small_cfg(
        DispatchPolicy::Aggressive,
        1,
        VerificationPolicy::Full,
        0.005,
    );
    let out = run_huffman_sim(&data, &cfg, &x86_smp(8), &Disk::default());
    assert!(out.metrics.rollbacks > 0);
    assert!(
        out.metrics.tasks_discarded + out.metrics.tasks_deleted_ready > 0,
        "rollbacks must destroy speculative tasks"
    );
    assert!(out.metrics.wasted_us > 0);
    assert!(out.metrics.wasted_us <= out.metrics.busy_us);
    // Every block still finalised exactly once (result() would panic on
    // double-finalisation; the length check covers omission).
    assert_eq!(out.result.blocks.len(), 128);
}

#[test]
fn stalled_arrivals_mid_stream_are_tolerated() {
    // A long arrival gap right where speculation is active: the pipeline
    // must idle and resume, not deadlock.
    let n_blocks = 64usize;
    let schedule: Vec<u64> = (0..n_blocks as u64)
        .map(|i| if i < 32 { i * 10 } else { 500_000 + i * 10 })
        .collect();
    let data = adversarial_data(n_blocks * 1024);
    let cfg = small_cfg(
        DispatchPolicy::Balanced,
        1,
        VerificationPolicy::baseline(),
        0.01,
    );
    let out = run_huffman_sim(&data, &cfg, &x86_smp(4), &Custom(schedule));
    decode_and_check(&out, &data);
    assert!(out.completion_time() >= 500_000);
}

#[test]
fn all_blocks_arriving_at_once_work() {
    let data = adversarial_data(64 * 1024);
    let cfg = small_cfg(
        DispatchPolicy::Aggressive,
        0,
        VerificationPolicy::Full,
        0.01,
    );
    let out = run_huffman_sim(
        &data,
        &cfg,
        &x86_smp(8),
        &Uniform {
            gap_us: 0,
            start_us: 0,
        },
    );
    decode_and_check(&out, &data);
}

/// The safety invariant under arbitrary content, policy, frequency and
/// tolerance: the committed stream always decodes to the input. Hand-rolled
/// seeded cases (the offline build has no proptest).
#[test]
fn prop_committed_output_always_decodes() {
    cases(0x5AFE, 24, |rng, case| {
        let seed = rng.random_range(0..1000u64);
        let regime_a = rng.random_range(0..4u8);
        let regime_b = rng.random_range(0..4u8);
        let policy = [
            DispatchPolicy::Balanced,
            DispatchPolicy::Aggressive,
            DispatchPolicy::Conservative,
        ][rng.random_range(0..3usize)];
        let step = rng.random_range(0..6u64);
        let verify = [
            VerificationPolicy::baseline(),
            VerificationPolicy::Optimistic,
            VerificationPolicy::Full,
        ][rng.random_range(0..3usize)];
        let tol = [0.0, 0.005, 0.01, 0.05, 1.0][rng.random_range(0..5usize)];
        // Two-regime synthetic input: arbitrary drift severity.
        let n = 48 * 1024;
        let data: Vec<u8> = (0..n)
            .map(|i| {
                let r = if i < n / 2 { regime_a } else { regime_b };
                let x = (i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(seed)
                    >> 33;
                match r {
                    0 => b'a' + (x % 8) as u8,
                    1 => 128 + (x % 64) as u8,
                    2 => (x % 251) as u8,
                    _ => b'0' + (x % 10) as u8,
                }
            })
            .collect();
        let cfg = small_cfg(policy, step, verify, tol);
        let out = run_huffman_sim(&data, &cfg, &x86_smp(8), &Disk::default());
        // Safety: decodes to input...
        let (bytes, bits, lengths) = out.result.output.as_ref().expect("collected");
        let table = CodeTable::from_lengths(lengths);
        let decoded = decode_exact(bytes, 0, *bits, data.len(), &table).expect("decodes");
        assert_eq!(decoded, data, "case {case}");
        // ...every block exactly once...
        assert_eq!(out.result.blocks.len(), n / 1024, "case {case}");
        // ...and accounting is conservative.
        assert!(out.metrics.wasted_us <= out.metrics.busy_us, "case {case}");
        // If nothing was committed, the output must be optimal (natural path).
        if out.result.committed_version.is_none() {
            let serial = serial_encode(&data).unwrap();
            assert_eq!(out.result.compressed_bits, serial.bit_len, "case {case}");
        }
    });
}

/// Arbitrary (monotone) arrival schedules never deadlock the pipeline.
#[test]
fn prop_arbitrary_schedules_complete() {
    cases(0x5C4ED, 24, |rng, case| {
        let step = rng.random_range(0..4u64);
        let schedule: Vec<u64> = (0..32)
            .map(|_| rng.random_range(0..5_000u64))
            .scan(0u64, |acc, g| {
                *acc += g;
                Some(*acc)
            })
            .collect();
        let data = adversarial_data(32 * 1024);
        let cfg = small_cfg(
            DispatchPolicy::Balanced,
            step,
            VerificationPolicy::Full,
            0.01,
        );
        let out = run_huffman_sim(&data, &cfg, &x86_smp(4), &Custom(schedule));
        assert_eq!(out.result.blocks.len(), 32, "case {case}");
        let (bytes, bits, lengths) = out.result.output.as_ref().expect("collected");
        let table = CodeTable::from_lengths(lengths);
        let decoded = decode_exact(bytes, 0, *bits, data.len(), &table).expect("decodes");
        assert_eq!(decoded, data, "case {case}");
    });
}
