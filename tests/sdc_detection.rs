//! Replication-based validation end-to-end: silent data corruptions
//! injected into encode outputs (`FaultSite::TaskOutput`) must be
//! *detected* — not merely survived — under `ValidationMode::Replicate`
//! and `ValidationMode::Both`, on both executors, and the recovered
//! output must stay byte-identical to a clean encode of the input.
//!
//! The corruptions never panic, never stall and keep the bit count
//! intact, so retry and the tolerance checks are both blind to them:
//! the final test demonstrates that `Tolerance`-only validation ships a
//! corrupted stream for at least one seed.

use tvs_core::ValidationMode;
use tvs_huffman::{decode_exact, CodeTable};
use tvs_iosim::Uniform;
use tvs_pipelines::config::HuffmanConfig;
use tvs_pipelines::runner::{run_huffman_sim_sdc, run_huffman_threaded_sdc, RunOutcome};
use tvs_sre::{x86_smp, DispatchPolicy, FaultInjector, FaultPlan, FaultSite};

const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 34];

/// Stationary text with a realistically rich alphabet, so speculation
/// commits cleanly and corrupted encodes land in the committed stream.
fn stationary(n: usize) -> Vec<u8> {
    let mut pattern = b"etaoin shrdlu ".repeat(10);
    pattern.extend_from_slice(b"qzxjkvbw,.!?");
    (0..n).map(|i| pattern[i % pattern.len()]).collect()
}

fn cfg(validation: ValidationMode) -> HuffmanConfig {
    let mut c = HuffmanConfig::disk_x86(DispatchPolicy::Balanced);
    c.block_bytes = 1024;
    c.reduce_ratio = 4;
    c.offset_fanout = 4;
    c.schedule = tvs_core::SpeculationSchedule::with_step(1);
    c.verification = tvs_core::VerificationPolicy::Full;
    c.collect_output = true;
    c.validation = validation;
    c
}

/// `Ok(())` when the collected stream decodes byte-identically to
/// `input`; `Err` describes the divergence (wrong bytes or a stream the
/// decoder rejects outright).
fn decoded_matches(out: &RunOutcome, input: &[u8]) -> Result<(), String> {
    let (bytes, bits, lengths) = out.result.output.as_ref().expect("output collected");
    let table = CodeTable::from_lengths(lengths);
    match decode_exact(bytes, 0, *bits, input.len(), &table) {
        Ok(decoded) if decoded == input => Ok(()),
        Ok(_) => Err("stream decodes to different bytes".into()),
        Err(e) => Err(format!("stream no longer decodes: {e:?}")),
    }
}

fn modes() -> [ValidationMode; 2] {
    [
        ValidationMode::Replicate { sample_rate: 1.0 },
        ValidationMode::Both { sample_rate: 1.0 },
    ]
}

#[test]
fn sim_detects_injected_corruption_and_recovers() {
    let data = stationary(32 * 1024);
    let arrival = Uniform {
        gap_us: 2,
        start_us: 0,
    };
    for mode in modes() {
        let mut total_injected = 0;
        for seed in SEEDS {
            let faults = FaultInjector::new(FaultPlan::sdc(seed));
            let (out, stats) =
                run_huffman_sim_sdc(&data, &cfg(mode), &x86_smp(4), &arrival, faults.clone());
            let injected = faults.injected_at(FaultSite::TaskOutput);
            total_injected += injected;
            decoded_matches(&out, &data)
                .unwrap_or_else(|e| panic!("seed {seed} {mode:?}: corrupted output shipped: {e}"));
            if injected > 0 {
                assert!(
                    stats.sdc_detected >= 1,
                    "seed {seed} {mode:?}: {injected} corruptions injected, none detected: {stats:?}"
                );
            }
            assert!(
                stats.replicas_spawned > 0,
                "seed {seed} {mode:?}: replication never engaged"
            );
        }
        assert!(
            total_injected > 0,
            "{mode:?}: the seed set must actually inject corruptions"
        );
    }
}

#[test]
fn threaded_detects_injected_corruption_and_recovers() {
    let data = stationary(32 * 1024);
    let arrival = Uniform {
        gap_us: 1,
        start_us: 0,
    };
    for mode in modes() {
        let mut total_injected = 0;
        for seed in SEEDS {
            let faults = FaultInjector::new(FaultPlan::sdc(seed));
            let (out, stats) =
                run_huffman_threaded_sdc(&data, &cfg(mode), 4, &arrival, 1000, faults.clone())
                    .expect("replicated threaded run completes");
            let injected = faults.injected_at(FaultSite::TaskOutput);
            total_injected += injected;
            decoded_matches(&out, &data)
                .unwrap_or_else(|e| panic!("seed {seed} {mode:?}: corrupted output shipped: {e}"));
            if injected > 0 {
                assert!(
                    stats.sdc_detected >= 1,
                    "seed {seed} {mode:?}: {injected} corruptions injected, none detected: {stats:?}"
                );
            }
        }
        assert!(
            total_injected > 0,
            "{mode:?}: the seed set must actually inject corruptions"
        );
    }
}

#[test]
fn sim_replicated_runs_are_deterministic() {
    let data = stationary(32 * 1024);
    let arrival = Uniform {
        gap_us: 2,
        start_us: 0,
    };
    let run = |seed: u64| {
        let faults = FaultInjector::new(FaultPlan::sdc(seed));
        run_huffman_sim_sdc(
            &data,
            &cfg(ValidationMode::Both { sample_rate: 1.0 }),
            &x86_smp(4),
            &arrival,
            faults,
        )
    };
    let (a, sa) = run(13);
    let (b, sb) = run(13);
    assert_eq!(a.metrics, b.metrics, "replicated sim runs must reproduce");
    assert_eq!(a.result.compressed_bits, b.result.compressed_bits);
    assert_eq!(sa, sb, "replica vote outcomes must reproduce");
}

#[test]
fn tolerance_only_misses_silent_corruption() {
    // The negative control: the paper's tolerance checks judge *tree
    // quality*, not encode outputs, so a bit flipped after a successful
    // encode sails straight through. At least one seed must ship a
    // stream that no longer decodes to the input.
    let data = stationary(32 * 1024);
    let arrival = Uniform {
        gap_us: 2,
        start_us: 0,
    };
    let mut missed = 0;
    for seed in SEEDS {
        let faults = FaultInjector::new(FaultPlan::sdc(seed));
        let (out, stats) = run_huffman_sim_sdc(
            &data,
            &cfg(ValidationMode::Tolerance),
            &x86_smp(4),
            &arrival,
            faults.clone(),
        );
        assert_eq!(
            stats.replicas_spawned, 0,
            "tolerance mode must not replicate"
        );
        assert_eq!(stats.sdc_detected, 0, "tolerance mode cannot detect SDC");
        if faults.injected_at(FaultSite::TaskOutput) > 0 && decoded_matches(&out, &data).is_err() {
            missed += 1;
        }
    }
    assert!(
        missed >= 1,
        "tolerance-only validation must demonstrably miss at least one corruption"
    );
}
