//! Fig. 2 as a test: the task graph the pipeline actually unfolds matches
//! the paper's data-flow diagram — counts per block, a serial reduce
//! chain, one tree, a serial offset chain fanning out into encodes, plus
//! the speculative predictor/check/offset/encode overlay.

use tvs_core::{SpeculationSchedule, Tolerance, ValidationMode, VerificationPolicy};
use tvs_iosim::Uniform;
use tvs_pipelines::config::HuffmanConfig;
use tvs_pipelines::runner::run_huffman_sim_traced;
use tvs_sre::{x86_smp, DispatchPolicy, TaskTrace};

/// Stationary text with a realistically rich alphabet (rare symbols are
/// genuinely rare, so covering-tree overhead stays far below 1 %).
fn stationary(n: usize) -> Vec<u8> {
    let mut pattern = b"etaoin shrdlu ".repeat(10);
    pattern.extend_from_slice(b"qzxjkvbw,.!?");
    (0..n).map(|i| pattern[i % pattern.len()]).collect()
}

fn count_kind(trace: &[TaskTrace], name: &str) -> usize {
    trace.iter().filter(|t| t.name == name).count()
}

fn cfg(policy: DispatchPolicy) -> HuffmanConfig {
    HuffmanConfig {
        block_bytes: 1024,
        reduce_ratio: 4,
        offset_fanout: 8,
        policy,
        schedule: SpeculationSchedule::with_step(1),
        verification: VerificationPolicy::baseline(),
        tolerance: Tolerance::percent(1.0),
        predictor: Default::default(),
        collect_output: false,
        breaker: None,
        validation: ValidationMode::Tolerance,
        checkpoint: None,
        ladder: None,
    }
}

#[test]
fn non_speculative_dfg_matches_fig2a() {
    // 64 KB / 1 KB blocks = 64 blocks; reduce 4:1 -> 16 groups; offsets 8:1.
    let data = stationary(64 * 1024);
    let (_out, trace) = run_huffman_sim_traced(
        &data,
        &cfg(DispatchPolicy::NonSpeculative),
        &x86_smp(8),
        &Uniform {
            gap_us: 1,
            start_us: 0,
        },
        true,
    );
    assert_eq!(count_kind(&trace, "count"), 64, "one count per block");
    assert_eq!(count_kind(&trace, "reduce"), 16, "reduce fan-in 4:1");
    assert_eq!(count_kind(&trace, "tree"), 1, "a single serial tree task");
    assert_eq!(
        count_kind(&trace, "offset"),
        8,
        "offset chain at 8:1 fan-out"
    );
    assert_eq!(count_kind(&trace, "encode"), 64, "one encode per block");
    assert_eq!(count_kind(&trace, "predict"), 0);
    assert_eq!(count_kind(&trace, "check"), 0);
    assert_eq!(count_kind(&trace, "final-check"), 0);

    // The serial chains really are serial: reduces never overlap in time,
    // and neither do offsets.
    for name in ["reduce", "offset"] {
        let mut spans: Vec<(u64, u64)> = trace
            .iter()
            .filter(|t| t.name == name)
            .map(|t| (t.start, t.end))
            .collect();
        spans.sort_unstable();
        for w in spans.windows(2) {
            assert!(w[1].0 >= w[0].1, "{name} chain must be serial: {w:?}");
        }
    }

    // Dependency sanity: no encode starts before the tree finishes.
    let tree_end = trace.iter().find(|t| t.name == "tree").unwrap().end;
    let first_encode = trace
        .iter()
        .filter(|t| t.name == "encode")
        .map(|t| t.start)
        .min()
        .unwrap();
    assert!(first_encode >= tree_end, "encodes depend on the tree");
}

#[test]
fn speculative_dfg_matches_fig2b() {
    let data = stationary(64 * 1024);
    // Full verification so intermediate checks appear even in this small,
    // fast run (the predictor outlives the early verification points of
    // the every-8th baseline here).
    let mut c = cfg(DispatchPolicy::Balanced);
    c.verification = VerificationPolicy::Full;
    let (out, trace) = run_huffman_sim_traced(
        &data,
        &c,
        &x86_smp(8),
        &Uniform {
            gap_us: 1,
            start_us: 0,
        },
        true,
    );
    // The natural first pass is unchanged.
    assert_eq!(count_kind(&trace, "count"), 64);
    assert_eq!(count_kind(&trace, "reduce"), 16);
    assert_eq!(count_kind(&trace, "tree"), 1);
    // The speculative overlay appears...
    assert_eq!(
        count_kind(&trace, "predict"),
        1,
        "one speculative tree prediction"
    );
    assert!(
        count_kind(&trace, "check") >= 1,
        "intermediate checks per Fig. 2b"
    );
    assert_eq!(count_kind(&trace, "final-check"), 1, "the decisive check");
    // ...and replaces the natural encode phase entirely on commit.
    assert!(out.result.committed_version.is_some());
    assert_eq!(
        count_kind(&trace, "encode"),
        64,
        "no re-encoding when committed"
    );
    assert!(trace
        .iter()
        .filter(|t| t.name == "encode")
        .all(|t| t.version == out.result.committed_version));

    // Speculative encodes start before the final tree exists — the whole
    // point of the paper.
    let tree_end = trace.iter().find(|t| t.name == "tree").unwrap().end;
    let first_encode = trace
        .iter()
        .filter(|t| t.name == "encode")
        .map(|t| t.start)
        .min()
        .unwrap();
    assert!(
        first_encode < tree_end,
        "speculative encodes must precede the serial bottleneck's output"
    );
}

#[test]
fn rollback_dfg_discards_and_reissues() {
    // Shifting data: version 1's overlay is destroyed and a later version
    // (or the natural path) re-encodes every block.
    let mut data = vec![b'a'; 32 * 1024];
    data.extend((0..32 * 1024u32).map(|i| 128 + (i % 100) as u8));
    let (out, trace) = run_huffman_sim_traced(
        &data,
        &cfg(DispatchPolicy::Balanced),
        &x86_smp(8),
        &Uniform {
            gap_us: 1,
            start_us: 0,
        },
        true,
    );
    assert!(out.metrics.rollbacks > 0);
    let discarded = trace.iter().filter(|t| t.discarded).count();
    let deleted = out.metrics.tasks_deleted_ready as usize;
    assert!(
        discarded + deleted > 0,
        "rollback must destroy speculative work"
    );
    // Committed/natural encodes still cover all 64 blocks exactly once.
    let good_encodes: Vec<u64> = trace
        .iter()
        .filter(|t| {
            t.name == "encode" && !t.discarded && {
                match out.result.committed_version {
                    Some(v) => t.version == Some(v),
                    None => t.version.is_none(),
                }
            }
        })
        .map(|t| t.tag)
        .collect();
    let mut tags = good_encodes.clone();
    tags.sort_unstable();
    tags.dedup();
    assert_eq!(
        tags.len(),
        64,
        "every block encoded exactly once in the surviving version"
    );
}
