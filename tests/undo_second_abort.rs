//! Undo-journal replay under a mid-cascade second abort: a rollback is
//! already replaying a version's journal when the abort of another
//! version arrives. Workload callbacks are serialized by every executor,
//! so the second abort queues behind the in-flight replay — the
//! invariants are that both journals replay exactly once, replay order
//! within a version stays LIFO, a duplicate abort is a no-op, and the
//! shared state lands back on its pre-speculation baseline.
//!
//! The same synthetic workload runs on all three executors (sim,
//! baseline, threaded); a fourth test uses the `UndoJournal` stall
//! fault to hold a threaded replay open while a panicking task on
//! another worker raises the second abort for real.

use std::sync::{Arc, Mutex};
use tvs_core::undo::UndoLog;
use tvs_sre::exec::sim::{run as sim_run, SimConfig};
use tvs_sre::exec::threaded::ThreadedConfig;
use tvs_sre::exec::{baseline, threaded};
use tvs_sre::task::payload;
use tvs_sre::{
    lock_recover, Completion, DispatchPolicy, FaultInjector, FaultKind, FaultNotice, FaultPlan,
    FaultSite, FixedCost, InputBlock, SchedCtx, SpecVersion, TaskSpec, Workload,
};

const V1: SpecVersion = 1;
const V2: SpecVersion = 2;
const CELLS: usize = 8;

type Cells = Arc<Mutex<Vec<i64>>>;
type Journal = Arc<Mutex<UndoLog<Box<dyn FnOnce() + Send>>>>;

/// Speculatively overwrite `cells[lo..lo + 4]` with `base + i`, journalling
/// the reversal of each write under `version`. Effects are applied
/// immediately and journalled — the paper's "user-defined rollback
/// routines" discipline — with the cells lock dropped before the journal
/// lock is taken (replay acquires them in the opposite order). An optional
/// `probe` entry is journalled between the second and third write, so LIFO
/// replay runs it with exactly half the version's writes still applied.
fn write_and_journal(
    cells: &Cells,
    undo: &Journal,
    version: SpecVersion,
    lo: usize,
    base: i64,
    probe: Option<Box<dyn FnOnce() + Send>>,
) {
    let mut reversals: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
    {
        let mut st = lock_recover(cells);
        for i in 0..4 {
            let idx = lo + i;
            let old = st[idx];
            st[idx] = base + i as i64;
            let cells = Arc::clone(cells);
            reversals.push(Box::new(move || {
                lock_recover(&cells)[idx] = old;
            }));
        }
    }
    let mut log = lock_recover(undo);
    let mut probe = probe;
    for (i, r) in reversals.into_iter().enumerate() {
        log.record(version, r);
        if i == 1 {
            if let Some(p) = probe.take() {
                log.record(version, p);
            }
        }
    }
}

/// Two speculative versions write disjoint cell ranges; once both writers
/// complete, the workload aborts V1, and a V1 undo entry snapshots the
/// half-replayed state at the moment the second abort "arrives". The V2
/// abort then queues behind the replay, exactly as a serialized callback
/// would, followed by a duplicate V1 abort and a post-abort spawn attempt.
struct TwoVersionCascade {
    cells: Cells,
    undo: Journal,
    /// Cells as seen mid-replay of V1 (set by the second undo entry).
    mid_snapshot: Arc<Mutex<Option<Vec<i64>>>>,
    writers_done: usize,
    /// (entries replayed for V1, for V2, for the duplicate V1 abort).
    replayed: Option<(usize, usize, usize)>,
    spawn_after_abort_refused: bool,
    finished: bool,
}

impl TwoVersionCascade {
    fn new() -> Self {
        TwoVersionCascade {
            cells: Arc::new(Mutex::new(vec![0; CELLS])),
            undo: Arc::new(Mutex::new(UndoLog::new())),
            mid_snapshot: Arc::new(Mutex::new(None)),
            writers_done: 0,
            replayed: None,
            spawn_after_abort_refused: false,
            finished: false,
        }
    }
}

impl Workload for TwoVersionCascade {
    fn on_start(&mut self, ctx: &mut dyn SchedCtx) {
        for (version, lo, base) in [(V1, 0usize, 100i64), (V2, 4, 200)] {
            let cells = Arc::clone(&self.cells);
            let undo = Arc::clone(&self.undo);
            // V1 carries the mid-replay probe: it snapshots the cells at
            // the instant the second abort request lands, half-way through
            // V1's own rollback.
            let snap = (version == V1).then(|| Arc::clone(&self.mid_snapshot));
            ctx.spawn(TaskSpec::speculative(
                "spec-write",
                0,
                CELLS,
                version,
                lo as u64,
                move |_| {
                    let probe = snap.clone().map(|snap| {
                        let cells = Arc::clone(&cells);
                        Box::new(move || {
                            *lock_recover(&snap) = Some(lock_recover(&cells).clone());
                        }) as Box<dyn FnOnce() + Send>
                    });
                    write_and_journal(&cells, &undo, version, lo, base, probe);
                    payload(())
                },
            ));
        }
    }

    fn on_input(&mut self, _: &mut dyn SchedCtx, _: InputBlock) {}

    fn on_complete(&mut self, ctx: &mut dyn SchedCtx, _done: Completion) {
        self.writers_done += 1;
        if self.writers_done < 2 {
            return;
        }
        // Both versions' effects are live.
        assert_eq!(
            *lock_recover(&self.cells),
            vec![100, 101, 102, 103, 200, 201, 202, 203]
        );
        ctx.abort_version(V1);
        let n1 = lock_recover(&self.undo).abort(V1);
        // The second abort was requested while the replay above was
        // running; serialized callbacks process it next.
        ctx.abort_version(V2);
        let n2 = lock_recover(&self.undo).abort(V2);
        // A duplicate abort of an already-drained journal is a no-op.
        let dup = lock_recover(&self.undo).abort(V1);
        self.replayed = Some((n1, n2, dup));
        // The scheduler must refuse spawns for the aborted version.
        self.spawn_after_abort_refused = ctx
            .spawn(TaskSpec::speculative("late", 0, 0, V2, 9, |_| payload(())))
            .is_none();
        self.finished = true;
    }

    fn is_finished(&self) -> bool {
        self.finished
    }
}

fn assert_cascade_invariants(w: &TwoVersionCascade) {
    assert_eq!(
        *lock_recover(&w.cells),
        vec![0i64; CELLS],
        "cascade must restore the pre-speculation baseline"
    );
    // 4 journalled writes per version + the snapshot probe under V1.
    assert_eq!(w.replayed, Some((5, 4, 0)));
    assert_eq!(lock_recover(&w.undo).stats(), (0, 9));
    assert!(
        w.spawn_after_abort_refused,
        "aborted version accepts spawns"
    );
    // The probe ran after V1's cell-3 and cell-2 entries but before cells
    // 1/0 were restored and before V2's replay: a half-rolled-back world.
    let snap = lock_recover(&w.mid_snapshot).clone();
    assert_eq!(
        snap,
        Some(vec![100, 101, 0, 0, 200, 201, 202, 203]),
        "second abort must observe V1 mid-replay with V2 still applied"
    );
}

#[test]
fn sim_second_abort_mid_cascade() {
    let cfg = SimConfig {
        platform: tvs_sre::x86_smp(4),
        policy: DispatchPolicy::Aggressive,
        trace: false,
    };
    let report = sim_run(TwoVersionCascade::new(), &cfg, &FixedCost(10), Vec::new());
    assert_cascade_invariants(&report.workload);
}

#[test]
fn baseline_second_abort_mid_cascade() {
    let cfg = ThreadedConfig::new(2, DispatchPolicy::Aggressive);
    let (w, _) = baseline::run(
        TwoVersionCascade::new(),
        &cfg,
        Vec::<(usize, Arc<[u8]>)>::new(),
    );
    assert_cascade_invariants(&w);
}

#[test]
fn threaded_second_abort_mid_cascade() {
    let cfg = ThreadedConfig::new(4, DispatchPolicy::Aggressive);
    let (w, _) = threaded::run(
        TwoVersionCascade::new(),
        &cfg,
        Vec::<(usize, Arc<[u8]>)>::new(),
    );
    assert_cascade_invariants(&w);
}

/// The genuinely concurrent variant: an `UndoJournal` stall holds V1's
/// replay open on the callback thread while a V2 task panics on another
/// worker. The fault notice — the second abort — arrives while the
/// rollback is mid-replay and must queue behind it; whatever the
/// interleaving, both journals drain exactly once and the baseline state
/// is restored.
struct StalledReplayRace {
    cells: Cells,
    undo: Journal,
    cascade_done: bool,
    fault_seen: bool,
}

impl Workload for StalledReplayRace {
    fn on_start(&mut self, ctx: &mut dyn SchedCtx) {
        // V2 applies its effects, journals them, lingers, then panics —
        // ideally inside V1's stalled replay window.
        let cells = Arc::clone(&self.cells);
        let undo = Arc::clone(&self.undo);
        ctx.spawn(TaskSpec::speculative(
            "doomed",
            0,
            CELLS,
            V2,
            1,
            move |_| {
                write_and_journal(&cells, &undo, V2, 4, 200, None);
                std::thread::sleep(std::time::Duration::from_millis(10));
                panic!("speculative task dies mid-flight");
            },
        ));
        let cells = Arc::clone(&self.cells);
        let undo = Arc::clone(&self.undo);
        ctx.spawn(TaskSpec::speculative(
            "writer",
            0,
            CELLS,
            V1,
            0,
            move |_| {
                std::thread::sleep(std::time::Duration::from_millis(3));
                write_and_journal(&cells, &undo, V1, 0, 100, None);
                payload(())
            },
        ));
    }

    fn on_input(&mut self, _: &mut dyn SchedCtx, _: InputBlock) {}

    fn on_complete(&mut self, ctx: &mut dyn SchedCtx, done: Completion) {
        assert_eq!(done.name, "writer");
        ctx.abort_version(V1);
        // The injected stall keeps this replay open for 20ms; "doomed"
        // panics at ~10ms, so its abort lands while we are in here.
        assert_eq!(lock_recover(&self.undo).abort(V1), 4);
        self.cascade_done = true;
    }

    fn on_fault(&mut self, _: &mut dyn SchedCtx, fault: FaultNotice) {
        assert_eq!(fault.version, Some(V2));
        assert_eq!(lock_recover(&self.undo).abort(V2), 4);
        self.fault_seen = true;
    }

    fn is_finished(&self) -> bool {
        self.cascade_done && self.fault_seen
    }
}

#[test]
fn threaded_abort_lands_during_stalled_replay() {
    let undo: Journal = Arc::new(Mutex::new(UndoLog::new()));
    lock_recover(&undo).set_fault_injector(FaultInjector::new(FaultPlan::new(3).with_rule(
        FaultSite::UndoJournal,
        FaultKind::Stall { us: 20_000 },
        1.0,
    )));
    let w = StalledReplayRace {
        cells: Arc::new(Mutex::new(vec![0; CELLS])),
        undo,
        cascade_done: false,
        fault_seen: false,
    };
    let cfg = ThreadedConfig::new(4, DispatchPolicy::Aggressive);
    let (w, m) = threaded::run(w, &cfg, Vec::<(usize, Arc<[u8]>)>::new());
    assert_eq!(
        *lock_recover(&w.cells),
        vec![0i64; CELLS],
        "both replays must restore the baseline"
    );
    assert_eq!(lock_recover(&w.undo).stats(), (0, 8));
    assert_eq!(m.faults, 1, "exactly one panicked task");
}
