//! Cross-cutting invariants over all three iterative applications (the
//! paper's §II-A workload classes): the filter solver, k-means, and
//! simulated annealing, next to the Huffman prefix case.
//!
//! One engine (`tvs-core`) drives four very different basis processes:
//! a linear contraction, a piecewise-constant Lloyd descent, a stochastic
//! annealing chain, and a converging prefix histogram. The invariants that
//! must hold regardless of the basis' character:
//!
//! 1. every block is finalised exactly once;
//! 2. speculation + commit never loses to the natural path by more than
//!    the verification overhead;
//! 3. a committed value is within the declared tolerance of the final one;
//! 4. non-speculative runs never roll back.

use tvs_pipelines::annealing::{run_anneal_sim, AnnealConfig};
use tvs_pipelines::filter::{run_filter_sim, FilterConfig};
use tvs_pipelines::kmeans::{run_kmeans_sim, KMeansConfig};
use tvs_sre::DispatchPolicy;

const BLOCKS: usize = 96;
const GAP: u64 = 8;
const WORKERS: usize = 8;

#[test]
fn filter_speculation_dominates_naturally() {
    let (ns, mn) = run_filter_sim(
        &FilterConfig {
            policy: DispatchPolicy::NonSpeculative,
            ..Default::default()
        },
        BLOCKS,
        GAP,
        WORKERS,
    );
    let (sp, ms) = run_filter_sim(&FilterConfig::default(), BLOCKS, GAP, WORKERS);
    assert_eq!(mn.rollbacks, 0);
    assert_eq!(ns.blocks.len(), BLOCKS);
    assert_eq!(sp.blocks.len(), BLOCKS);
    assert!(
        sp.mean_latency() <= ns.mean_latency(),
        "filter: {} vs {}",
        sp.mean_latency(),
        ns.mean_latency()
    );
    assert!(ms.makespan <= mn.makespan);
}

#[test]
fn kmeans_speculation_dominates_naturally() {
    let (ns, mn) = run_kmeans_sim(
        &KMeansConfig {
            policy: DispatchPolicy::NonSpeculative,
            ..Default::default()
        },
        BLOCKS,
        GAP,
        WORKERS,
    );
    let (sp, _ms) = run_kmeans_sim(&KMeansConfig::default(), BLOCKS, GAP, WORKERS);
    assert_eq!(mn.rollbacks, 0);
    assert_eq!(sp.blocks.len(), BLOCKS);
    assert!(
        sp.mean_latency() <= ns.mean_latency(),
        "kmeans: {} vs {}",
        sp.mean_latency(),
        ns.mean_latency()
    );
}

#[test]
fn annealing_speculation_never_worse_than_natural_plus_checks() {
    let (ns, mn) = run_anneal_sim(
        &AnnealConfig {
            policy: DispatchPolicy::NonSpeculative,
            ..Default::default()
        },
        BLOCKS,
        GAP,
        WORKERS,
    );
    let (sp, _ms) = run_anneal_sim(&AnnealConfig::default(), BLOCKS, GAP, WORKERS);
    assert_eq!(mn.rollbacks, 0);
    assert_eq!(sp.blocks.len(), BLOCKS);
    // Annealing's stochastic basis may force a late rollback; even then
    // the candidate-promotion path caps the damage near the natural run.
    assert!(
        sp.mean_latency() <= ns.mean_latency() * 1.05,
        "annealing: {} vs {}",
        sp.mean_latency(),
        ns.mean_latency()
    );
}

#[test]
fn all_dispatch_policies_complete_every_app() {
    for policy in [
        DispatchPolicy::NonSpeculative,
        DispatchPolicy::Conservative,
        DispatchPolicy::Aggressive,
        DispatchPolicy::Balanced,
        DispatchPolicy::BalancedTaskCount,
    ] {
        let (f, _) = run_filter_sim(
            &FilterConfig {
                policy,
                ..Default::default()
            },
            24,
            GAP,
            4,
        );
        assert_eq!(f.blocks.len(), 24, "{policy:?} filter");
        let (k, _) = run_kmeans_sim(
            &KMeansConfig {
                policy,
                ..Default::default()
            },
            24,
            GAP,
            4,
        );
        assert_eq!(k.blocks.len(), 24, "{policy:?} kmeans");
        let (a, _) = run_anneal_sim(
            &AnnealConfig {
                policy,
                ..Default::default()
            },
            24,
            GAP,
            4,
        );
        assert_eq!(a.blocks.len(), 24, "{policy:?} annealing");
    }
}

#[test]
fn committed_values_within_declared_tolerance() {
    // Filter: L2 distance of committed coefficients to the converged ones.
    let cfg = FilterConfig::default();
    let (sp, _) = run_filter_sim(&cfg, 24, GAP, 4);
    if sp.committed_version.is_some() {
        let (ns, _) = run_filter_sim(
            &FilterConfig {
                policy: DispatchPolicy::NonSpeculative,
                ..cfg.clone()
            },
            24,
            GAP,
            4,
        );
        let num: f64 = sp
            .coefficients
            .iter()
            .zip(&ns.coefficients)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let den: f64 = ns.coefficients.iter().map(|b| b * b).sum::<f64>().sqrt();
        assert!(
            num / den <= cfg.tolerance.margin + 1e-9,
            "filter tolerance violated"
        );
    }

    // Annealing: committed objective within tolerance of the final one.
    let acfg = AnnealConfig::default();
    let (asp, _) = run_anneal_sim(&acfg, 24, GAP, 4);
    if asp.committed_version.is_some() {
        let (ans, _) = run_anneal_sim(
            &AnnealConfig {
                policy: DispatchPolicy::NonSpeculative,
                ..acfg.clone()
            },
            24,
            GAP,
            4,
        );
        let rel = (asp.solution.cost - ans.solution.cost).max(0.0) / ans.solution.cost;
        assert!(
            rel <= acfg.tolerance.margin + 1e-9,
            "annealing tolerance violated: {rel}"
        );
    }
}
