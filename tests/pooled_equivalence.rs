//! Equivalence of the pooled (arena/scratch-recycled) speculation engine
//! with a plain Vec/HashMap reference, under the `tvs-chaos` seed matrix.
//!
//! The hot-path pass replaced per-event allocation in the engine — the
//! wait buffer and undo journal now recycle their per-version storage
//! through [`ScratchPool`]s, and the pipeline reuses encode buffers and
//! action scratch. None of that may change *behaviour*: undo cascades
//! must replay byte-identically to an unpooled reference, committed
//! buffer drains must produce the same `(slot, value)` stream, and the
//! full pipeline must keep the chaos invariant on both executors.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use tvs_core::{SpecVersion, UndoLog, WaitBuffer};
use tvs_huffman::{decode_exact, CodeTable};
use tvs_iosim::Uniform;
use tvs_pipelines::config::HuffmanConfig;
use tvs_pipelines::runner::{run_huffman_sim_chaos, run_huffman_threaded_chaos, RunOutcome};
use tvs_rng::SmallRng;
use tvs_sre::exec::sim::SimChaos;
use tvs_sre::exec::threaded::ThreadedConfig;
use tvs_sre::{x86_smp, DispatchPolicy, FaultInjector, FaultPlan, RunError, TraceLog};
use tvs_workloads::FileKind;

/// The `tvs-chaos` gauntlet's seed matrix — keep in sync with
/// `crates/bench/src/bin/tvs_chaos.rs`.
const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 34];

const STATE_BYTES: usize = 256;
const ROUNDS: usize = 48;
/// Rounds before the allocation counters are reset; past this point the
/// pooled engine must run allocation-free.
const WARMUP_ROUNDS: usize = 16;

/// One seeded run: a pooled engine (persistent `UndoLog` + `WaitBuffer`,
/// storage recycled across versions) and an unpooled reference (fresh
/// `Vec` journal and `HashMap` buffer per version) are driven through an
/// identical speculative write/commit/abort schedule. After every round
/// the two byte states must be identical, and committed outputs must
/// drain in the same order with the same payloads.
fn run_engine_equivalence(seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);

    // Shared mutable byte state for the pooled side; undo entries are
    // closures that restore single bytes, so a rollback is a cascade of
    // reverse-order byte restores.
    let pooled_state = Rc::new(RefCell::new(vec![0u8; STATE_BYTES]));
    let mut ref_state = vec![0u8; STATE_BYTES];

    type Entry = Box<dyn FnOnce()>;
    let mut undo: UndoLog<Entry> = UndoLog::new();
    let mut buffer: WaitBuffer<u64> = WaitBuffer::new();

    let mut pooled_commits: Vec<(u64, u64)> = Vec::new();
    let mut ref_commits: Vec<(u64, u64)> = Vec::new();
    let mut commit_scratch: Vec<(u64, u64)> = Vec::new();

    for round in 0..ROUNDS {
        if round == WARMUP_ROUNDS {
            undo.reset_alloc_stats();
            buffer.reset_alloc_stats();
        }
        let version = (round + 1) as SpecVersion;

        // Speculative writes with journalled undo on both sides.
        let mut ref_journal: Vec<(usize, u8)> = Vec::new();
        for _ in 0..rng.random_range(1..24usize) {
            let pos = rng.random_range(0..STATE_BYTES);
            let val = rng.random::<u8>();
            let old = pooled_state.borrow()[pos];
            pooled_state.borrow_mut()[pos] = val;
            let st = Rc::clone(&pooled_state);
            undo.record(version, Box::new(move || st.borrow_mut()[pos] = old));

            ref_journal.push((pos, ref_state[pos]));
            ref_state[pos] = val;
        }

        // Buffered speculative outputs (slots may repeat: replacement).
        let mut ref_buf: HashMap<u64, u64> = HashMap::new();
        for _ in 0..rng.random_range(0..16usize) {
            let slot = rng.random_range(0..12u64);
            let val = rng.random::<u64>();
            let pooled_old = buffer.push(version, slot, val);
            let ref_old = ref_buf.insert(slot, val);
            assert_eq!(pooled_old, ref_old, "seed {seed} round {round}");
        }

        if rng.random() {
            // Commit: journals retire, buffered outputs drain slot-sorted.
            undo.commit(version);
            commit_scratch.clear();
            buffer.commit_into(version, &mut commit_scratch);
            pooled_commits.extend(commit_scratch.iter().copied());
            let mut drained: Vec<(u64, u64)> = ref_buf.into_iter().collect();
            drained.sort_unstable_by_key(|&(slot, _)| slot);
            ref_commits.extend(drained);
        } else {
            // Abort: the undo cascade replays in reverse record order.
            undo.abort(version);
            buffer.abort(version);
            for (pos, old) in ref_journal.into_iter().rev() {
                ref_state[pos] = old;
            }
        }

        assert_eq!(
            *pooled_state.borrow(),
            ref_state,
            "seed {seed} round {round}: undo cascade diverged from the Vec reference"
        );
        assert_eq!(
            pooled_commits, ref_commits,
            "seed {seed} round {round}: committed output stream diverged"
        );
    }

    // The pooled engine's whole point: past warm-up it recycles instead
    // of allocating. One live version at a time means the pools always
    // have spare storage to hand back.
    assert_eq!(
        undo.alloc_stats().heap_allocs,
        0,
        "seed {seed}: undo journal heap-allocated after warm-up"
    );
    assert_eq!(
        buffer.alloc_stats().heap_allocs,
        0,
        "seed {seed}: wait buffer heap-allocated after warm-up"
    );
}

#[test]
fn pooled_engine_matches_vec_reference_under_chaos_seeds() {
    for seed in SEEDS {
        run_engine_equivalence(seed);
    }
}

fn cfg() -> HuffmanConfig {
    HuffmanConfig {
        collect_output: true,
        ..HuffmanConfig::disk_x86(DispatchPolicy::Balanced)
    }
}

/// The chaos invariant (same as the `tvs-chaos` gauntlet): a run either
/// completes with output that decodes byte-identically to the input, or
/// fails with a structured error — never silently wrong bytes.
fn assert_invariant(
    res: Result<(RunOutcome, TraceLog), RunError>,
    data: &[u8],
    what: &str,
    seed: u64,
) {
    // A structured `Err` is an allowed chaos outcome; only an Ok run must
    // round-trip exactly.
    if let Ok((out, _)) = res {
        let (bytes, bits, lengths) = out
            .result
            .output
            .as_ref()
            .unwrap_or_else(|| panic!("{what} seed {seed}: no collected output"));
        let table = CodeTable::from_lengths(lengths);
        let back = decode_exact(bytes, 0, *bits, data.len(), &table)
            .unwrap_or_else(|e| panic!("{what} seed {seed}: output does not decode: {e}"));
        assert_eq!(back, data, "{what} seed {seed}: decoded to WRONG bytes");
    }
}

#[test]
fn chaos_seeds_decode_byte_identically_on_both_executors() {
    let data = tvs_workloads::generate(FileKind::Text, 16 * 1024, 2011);
    let arrival = Uniform {
        gap_us: 2,
        start_us: 0,
    };
    let c = cfg();
    for seed in SEEDS {
        let chaos = SimChaos {
            faults: FaultInjector::new(FaultPlan::chaos(seed)),
            ..SimChaos::default()
        };
        let sim = run_huffman_sim_chaos(&data, &c, &x86_smp(8), &arrival, &chaos);
        assert_invariant(sim, &data, "sim", seed);

        let mut tcfg = ThreadedConfig::new(4, c.policy);
        tcfg.faults = FaultInjector::new(FaultPlan::chaos(seed));
        let thr = run_huffman_threaded_chaos(&data, &c, &tcfg, &arrival, 1000);
        assert_invariant(thr, &data, "threaded", seed);
    }
}
